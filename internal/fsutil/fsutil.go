// Package fsutil provides crash-safe filesystem helpers: atomic file
// replacement via temp-file + rename + directory fsync. Every artifact the
// CLIs persist (frames, lint baselines, bench snapshots, journal
// compactions) goes through here, so a crash mid-write can never leave a
// torn half-file where a previous good artifact used to be — the reader
// either sees the old content or the new content, nothing in between.
package fsutil

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"configvalidator/internal/faults"
)

// ErrLocked reports a LockFile call on a file another handle holds the
// exclusive lock on.
var ErrLocked = errors.New("fsutil: file locked by another writer")

// armed holds the process-wide write-path fault injector. Atomic writes
// happen from CLI startup code, journal compaction, and watch loops that
// do not share a common options struct, so chaos runs arm one injector
// globally (commands call ArmFaults right after FaultsFromEnv).
var armed atomic.Pointer[faults.Injector]

// ArmFaults installs a write-path fault injector consulted by
// WriteAtomic (op atomic-write, plus fsync for the temp-file sync). A nil
// injector disarms. Only chaos drills and the ENOSPC CI smoke use this;
// the production default is disarmed and costs one atomic load.
func ArmFaults(inj *faults.Injector) { armed.Store(inj) }

// WriteAtomic streams content into path atomically: the write callback
// fills a hidden temp file in the same directory, which is fsynced, renamed
// over path, and sealed with a directory fsync so the rename itself is
// durable. On any error the temp file is removed and path is untouched.
func WriteAtomic(path string, perm fs.FileMode, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsutil: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = os.Remove(tmpName)
		}
	}()
	if err = armed.Load().Check(faults.OpAtomicWrite, path); err != nil {
		return fmt.Errorf("fsutil: write %s: %w", path, err)
	}
	if err = write(tmp); err != nil {
		return fmt.Errorf("fsutil: write %s: %w", path, err)
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("fsutil: chmod %s: %w", path, err)
	}
	if err = armed.Load().Check(faults.OpFsync, path); err != nil {
		return fmt.Errorf("fsutil: sync %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsutil: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsutil: close %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fsutil: rename %s: %w", path, err)
	}
	if err = SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// WriteFileAtomic is WriteAtomic for in-memory content — the atomic
// counterpart of os.WriteFile.
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	return WriteAtomic(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SyncDir fsyncs a directory, making a just-completed rename or create in
// it durable. Filesystems that do not support directory fsync (some
// network mounts) report EINVAL/ENOTSUP; that is tolerated — the rename
// already happened, only its durability window is weaker.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsutil: open dir %s: %w", dir, err)
	}
	defer func() { _ = d.Close() }()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return fmt.Errorf("fsutil: sync dir %s: %w", dir, err)
	}
	return nil
}

// isSyncUnsupported reports whether the error means the filesystem cannot
// fsync a directory handle at all (as opposed to a real I/O failure).
func isSyncUnsupported(err error) bool {
	return errors.Is(err, fs.ErrInvalid) ||
		errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP)
}
