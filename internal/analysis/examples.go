package analysis

// Example returns a minimal CVL snippet that triggers the given
// diagnostic code, for `cvlint -explain` and docs/LINTING.md. The empty
// string means no example is available; TestExamplesComplete keeps the
// table in lockstep with the catalog.
func Example(code string) string {
	return codeExamples[code]
}

var codeExamples = map[string]string{
	CodeSyntax: `config_name: PermitRootLogin
  bad-indent: [
`,
	CodeNotMapping: `- just a string, not a rule mapping
`,
	CodeUnknownKeyword: `config_nme: PermitRootLogin   # typo: config_name
`,
	CodeWrongGroup: `config_name: PermitRootLogin
path_permission: "0600"       # a path-rule keyword on a config_tree rule
`,
	CodeInvalidRule: `config_name: PermitRootLogin
preferred_value_match: sometimes,all   # not a valid match kind
`,
	CodeDuplicateRule: `config_name: PermitRootLogin
---
config_name: PermitRootLogin   # same type and name twice in one file
`,
	CodeDuplicateParent: `parent_cvl_file: base.yaml
---
parent_cvl_file: other.yaml    # only one parent is allowed
`,
	CodeParentNotString: `parent_cvl_file: [base.yaml]   # must be a string, not a list
`,
	CodeMissingParent: `parent_cvl_file: no_such_file.yaml
`,
	CodeCycle: `# a.yaml
parent_cvl_file: b.yaml
# b.yaml
parent_cvl_file: a.yaml
`,
	CodeDeadOverride: `config_name: NotInheritedAnywhere
override: true                 # no parent rule to override
`,
	CodeShadowed: `# base.yaml defines PermitRootLogin; child.yaml:
parent_cvl_file: base.yaml
---
config_name: PermitRootLogin   # replaces it silently; add override: true
`,
	CodeDeadDisabled: `config_name: NotInheritedAnywhere
disabled: true                 # nothing to disable
`,
	CodeUnknownEntity: `composite_rule_name: agg
composite_rule: nosuch.PermitRootLogin   # entity "nosuch" in no manifest
`,
	CodeUnknownRuleRef: `composite_rule_name: agg
composite_rule: sshd.NoSuchRule          # falls back to key existence
`,
	CodeBadRegex: `config_name: Port
preferred_value: ["[unclosed"]
preferred_value_match: regex,any
`,
	CodeRelativePath: `path_name: etc/ssh/sshd_config   # not absolute
`,
	CodeContradiction: `config_name: Protocol
preferred_value: ["2"]
non_preferred_value: ["2"]       # same value both preferred and rejected
`,
	CodeMatchWithoutVal: `config_name: Protocol
preferred_value_match: exact,any   # no preferred_value list
`,
	CodeBadManifest: `sshd:
  cvl_files: sshd.yaml   # typo: cvl_file
`,
	CodeMissingRuleFile: `sshd:
  cvl_file: no_such_rules.yaml
`,
	CodeUnreachableFile: `# extra.yaml exists in the project but no manifest entity
# references it, directly or through inheritance.
`,
	CodeUselessTagFilter: `sshd:
  cvl_file: sshd.yaml
  tags: ["#no-rule-has-this-tag"]
`,
	CodeDuplicateEntity: `# manifest_a.yaml and manifest_b.yaml both define:
sshd:
  cvl_file: sshd.yaml
`,
	CodeUnsat: `config_name: Protocol
preferred_value: ["2"]
preferred_value_match: exact,any
non_preferred_value: ["2"]       # rejects the only accepted value
non_preferred_value_match: exact,any
`,
	CodeSubsumed: `config_schema_name: broad
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: [opts]
expect_rows: ">=1"
non_preferred_value: [defaults, exec]
non_preferred_value_match: exact,any
---
config_schema_name: narrow       # rejects a subset of "broad"'s values:
query_constraints: "dir = ?"     # it can never fire on its own
query_constraints_value: ["/tmp"]
query_columns: [opts]
expect_rows: ">=1"
non_preferred_value: [defaults]
non_preferred_value_match: exact,any
`,
	CodeInheritConflict: `# base.yaml accepts only high ports:
config_name: Port
preferred_value: ["^(102[4-9]|10[3-9][0-9]|1[1-9][0-9]{2}|[2-9][0-9]{3}|[1-6][0-9]{4})$"]
preferred_value_match: regex,any
# child.yaml overrides with a value outside that envelope:
parent_cvl_file: base.yaml
---
config_name: Port
override: true
preferred_value: ["22"]
preferred_value_match: exact,any
`,
	CodeCompositeTautology: `composite_rule_name: always_true
composite_rule: db.ssl || !db.ssl
`,
	CodeCompositeContradiction: `composite_rule_name: never_true
composite_rule: db.ssl && !db.ssl
`,
	CodeSeverityConflict: `script_name: selinux_hard
script_feature: selinux
severity: high
non_preferred_value: [disabled, permissive]
non_preferred_value_match: exact,any
---
script_name: selinux_soft        # both reject "disabled", severities differ
script_feature: selinux
severity: low
non_preferred_value: [disabled]
non_preferred_value_match: exact,any
`,
	CodeTypeMismatch: `config_name: Port                # sshd declares Port as a port number
file_context: [sshd_config]
preferred_value: ["yes"]         # can never match any legal Port value
preferred_value_match: exact,any
`,
	CodeMissingDescription: `config_name: PermitRootLogin     # no config_description
`,
	CodeMissingTags: `config_name: PermitRootLogin     # no tags list
`,
	CodeMissingOutputDesc: `config_name: PermitRootLogin
preferred_value: ["no"]          # no matched/not-matched descriptions
`,
	CodeImplicitMatch: `config_name: PermitRootLogin
preferred_value: ["no"]          # no preferred_value_match; defaults apply
`,
}
