package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

var renderDiags = []Diagnostic{
	{Code: "CVL102", Severity: SevError, File: "cyc2.yaml", Line: 1, Col: 1, Msg: "inheritance cycle"},
	{Code: "CVL104", Severity: SevWarning, File: "child.yaml", Line: 3, Col: 1, Rule: "ssl_protocols", Msg: "shadows inherited rule"},
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	RenderText(&buf, renderDiags, 4, 0, false)
	out := buf.String()
	if !strings.Contains(out, "cyc2.yaml:1:1: error CVL102") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "4 file(s) checked, 1 error(s), 1 warning(s)") {
		t.Errorf("summary missing: %q", out)
	}

	buf.Reset()
	RenderText(&buf, renderDiags, 4, 2, true)
	out = buf.String()
	if strings.Contains(out, "CVL104") {
		t.Errorf("quiet mode printed a warning: %q", out)
	}
	if !strings.Contains(out, "2 suppressed by baseline") {
		t.Errorf("suppressed count missing: %q", out)
	}
}

func TestRenderJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderJSON(&buf, renderDiags, 4); err != nil {
		t.Fatal(err)
	}
	var got struct {
		FilesChecked int `json:"files_checked"`
		Errors       int `json:"errors"`
		Warnings     int `json:"warnings"`
		Diagnostics  []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Rule     string `json:"rule"`
			Msg      string `json:"msg"`
			Text     string `json:"text"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.FilesChecked != 4 || got.Errors != 1 || got.Warnings != 1 {
		t.Errorf("counts = %+v", got)
	}
	if len(got.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %+v", got.Diagnostics)
	}
	d := got.Diagnostics[1]
	if d.Code != "CVL104" || d.Severity != "warning" || d.File != "child.yaml" || d.Line != 3 || d.Rule != "ssl_protocols" {
		t.Errorf("diag = %+v", d)
	}
	if !strings.Contains(d.Text, "child.yaml:3:1") {
		t.Errorf("text = %q", d.Text)
	}
}

func TestRenderSARIF(t *testing.T) {
	var buf bytes.Buffer
	// Include a zero-position diagnostic to exercise the >=1 clamp SARIF
	// requires for region coordinates.
	diags := append(renderDiags, Diagnostic{Code: "CVL303", Severity: SevWarning, File: "orphan.yaml", Msg: "unreachable"})
	if err := RenderSARIF(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name           string `json:"name"`
					InformationURI string `json:"informationUri"`
					Rules          []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						DefaultConfiguration struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || log.Schema != SARIFSchemaURI {
		t.Errorf("header = %q %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cvlint" || run.Tool.Driver.InformationURI == "" {
		t.Errorf("driver = %+v", run.Tool.Driver)
	}
	if len(run.Tool.Driver.Rules) != len(Catalog()) {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(Catalog()))
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %+v", run.Results)
	}
	r := run.Results[0]
	if r.RuleID != "CVL102" || r.Level != "error" || r.Message.Text != "inheritance cycle" {
		t.Errorf("result = %+v", r)
	}
	if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
		t.Errorf("ruleIndex %d does not point at %s", r.RuleIndex, r.RuleID)
	}
	if got := run.Results[1].Message.Text; !strings.Contains(got, `rule "ssl_protocols"`) {
		t.Errorf("rule prefix missing: %q", got)
	}
	loc := run.Results[2].Locations[0].PhysicalLocation
	if loc.Region.StartLine != 1 || loc.Region.StartColumn != 1 {
		t.Errorf("zero position not clamped: %+v", loc.Region)
	}
	if loc.ArtifactLocation.URI != "orphan.yaml" {
		t.Errorf("uri = %q", loc.ArtifactLocation.URI)
	}
}
