package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Suppression matches diagnostics by code, file, and (when set) rule
// name. Line numbers are deliberately not part of the match so a baseline
// survives unrelated edits to the file.
type Suppression struct {
	Code string `json:"code"`
	File string `json:"file"`
	Rule string `json:"rule,omitempty"`
}

// Baseline is a set of accepted findings. Diagnostics matching a
// suppression are filtered from analyzer output, so CI gates only on new
// findings.
type Baseline struct {
	Version      int           `json:"version"`
	Suppressions []Suppression `json:"suppressions"`
}

// BaselineVersion is the current baseline file format version.
const BaselineVersion = 1

func suppressionKey(code, file, rule string) string {
	return code + "\x00" + file + "\x00" + rule
}

// NewBaseline builds a baseline accepting every given diagnostic,
// deduplicated and sorted.
func NewBaseline(diags []Diagnostic) *Baseline {
	seen := map[string]bool{}
	b := &Baseline{Version: BaselineVersion}
	for _, d := range diags {
		key := suppressionKey(d.Code, d.File, d.Rule)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.Suppressions = append(b.Suppressions, Suppression{Code: d.Code, File: d.File, Rule: d.Rule})
	}
	sort.Slice(b.Suppressions, func(i, j int) bool {
		x, y := b.Suppressions[i], b.Suppressions[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Code != y.Code {
			return x.Code < y.Code
		}
		return x.Rule < y.Rule
	})
	return b
}

// ParseBaseline decodes a baseline file.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parse baseline: %w", err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("analysis: unsupported baseline version %d (want %d)", b.Version, BaselineVersion)
	}
	return &b, nil
}

// Encode writes the baseline as indented JSON.
func (b *Baseline) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Filter splits diagnostics into those the baseline does not cover
// (kept) and those it suppresses.
func (b *Baseline) Filter(diags []Diagnostic) (kept, suppressed []Diagnostic) {
	index := make(map[string]bool, len(b.Suppressions))
	for _, s := range b.Suppressions {
		index[suppressionKey(s.Code, s.File, s.Rule)] = true
	}
	for _, d := range diags {
		if index[suppressionKey(d.Code, d.File, d.Rule)] {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
