// Package analysis implements the project-wide CVL static analyzer: a
// multi-pass checker that takes a whole rule project (manifests, rule
// files, and their inheritance parents) and emits positioned, coded
// diagnostics.
//
// Where internal/cvl.Lint checks one file in isolation, this package
// resolves the full parent_cvl_file inheritance graph (missing parents,
// cycles, dead overrides/disables, silent shadowing), performs cross-file
// semantic checks (undefined composite references, invalid regexes,
// contradictory value matchers), and validates manifest reachability
// (orphaned rule files, tag filters that select nothing). Every
// diagnostic carries a stable code (CVL001…, see Catalog), a severity,
// and a file:line:col position threaded up from the YAML decoder.
//
// Results render as human text, JSON, or SARIF 2.1.0 (render.go), and a
// suppression baseline (baseline.go) lets existing findings be frozen so
// CI only fails on new ones.
package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"configvalidator/internal/yaml"
)

// Severity classifies a diagnostic.
type Severity int

// Severity levels. Errors make the project unusable or mask real
// misconfigurations; warnings are maintainability and usability hazards.
const (
	SevError Severity = iota + 1
	SevWarning
)

// String returns the severity name.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one positioned, coded analyzer finding.
type Diagnostic struct {
	// Code is the stable diagnostic code, e.g. "CVL101" (see Catalog).
	Code string
	// Severity is error or warning.
	Severity Severity
	// File is the project path of the offending file.
	File string
	// Line and Col are the 1-based position of the offending key or rule.
	Line, Col int
	// Rule is the rule name the finding concerns, when attributable.
	Rule string
	// Msg describes the finding.
	Msg string
	// Related points at other locations involved in the finding — the
	// replaced parent rule, the subsuming sibling, folded composite
	// members. Rendered as secondary locations in text, JSON, and SARIF.
	Related []RelatedPos
}

// RelatedPos is a secondary location attached to a diagnostic.
type RelatedPos struct {
	// File, Line, Col locate the related rule.
	File string
	Line int
	Col  int
	// Rule is the related rule's name.
	Rule string
	// Msg says how the location relates to the finding.
	Msg string
}

// String renders "file:line:col: severity CODE: [rule "x": ] msg".
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s %s: ", d.File, d.Line, d.Col, d.Severity, d.Code)
	if d.Rule != "" {
		fmt.Fprintf(&b, "rule %q: ", d.Rule)
	}
	b.WriteString(d.Msg)
	return b.String()
}

// Project is the unit of analysis: a set of rule files and manifests,
// keyed by path. Parent and manifest references are resolved against
// these paths (exactly, relative to the referencing file, or relative to
// a load root).
type Project struct {
	files    map[string][]byte
	order    []string
	manifest map[string]bool
	roots    []string
}

// NewProject returns an empty project.
func NewProject() *Project {
	return &Project{files: map[string][]byte{}, manifest: map[string]bool{}}
}

// AddRuleFile adds a CVL rule file under the given project path.
func (p *Project) AddRuleFile(path string, content []byte) {
	p.add(path, content, false)
}

// AddManifest adds a manifest file under the given project path.
func (p *Project) AddManifest(path string, content []byte) {
	p.add(path, content, true)
}

func (p *Project) add(path string, content []byte, isManifest bool) {
	path = filepath.ToSlash(filepath.Clean(path))
	if _, ok := p.files[path]; !ok {
		p.order = append(p.order, path)
	}
	p.files[path] = content
	p.manifest[path] = isManifest
}

// Len reports how many files the project holds.
func (p *Project) Len() int { return len(p.order) }

// Paths returns the project file paths in insertion order.
func (p *Project) Paths() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// IsManifestPath reports whether a file name denotes a manifest by
// convention: its base name contains "manifest".
func IsManifestPath(path string) bool {
	return strings.Contains(strings.ToLower(filepath.Base(path)), "manifest")
}

// AddDir walks dir and adds every .yaml/.yml file, classifying manifests
// by name (IsManifestPath). The directory becomes a resolution root for
// project-relative parent and cvl_file references.
func (p *Project) AddDir(dir string) error {
	p.roots = append(p.roots, filepath.ToSlash(filepath.Clean(dir)))
	return filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		ext := strings.ToLower(filepath.Ext(path))
		if ext != ".yaml" && ext != ".yml" {
			return nil
		}
		content, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		p.add(path, content, IsManifestPath(path))
		return nil
	})
}

// LoadDir builds a project from every YAML file under dir.
func LoadDir(dir string) (*Project, error) {
	p := NewProject()
	if err := p.AddDir(dir); err != nil {
		return nil, err
	}
	return p, nil
}

// resolveRef resolves a file reference appearing in the file `from`: the
// reference as-is, relative to from's directory, then relative to each
// load root. It returns the matching project path.
func (p *Project) resolveRef(from, ref string) (string, bool) {
	candidates := []string{filepath.ToSlash(filepath.Clean(ref))}
	if dir := filepath.Dir(from); dir != "." {
		candidates = append(candidates, filepath.ToSlash(filepath.Join(dir, ref)))
	}
	for _, root := range p.roots {
		candidates = append(candidates, filepath.ToSlash(filepath.Join(root, ref)))
	}
	for _, c := range candidates {
		if _, ok := p.files[c]; ok {
			return c, true
		}
	}
	return "", false
}

// Options tunes analysis.
type Options struct {
	// ExternalParents downgrades unresolvable parent_cvl_file references
	// from errors to warnings. Set it when analyzing a file outside its
	// project (for example the single-file POST /v1/lint endpoint), where
	// the parent legitimately cannot be present.
	ExternalParents bool
	// NoSemantic skips the constraint-level semantic pass (the CVL4xx
	// family produced by internal/analysis/sem). On by default because
	// semantic findings — unsatisfiable rules, dead overrides — are
	// exactly the silent misconfigurations the analyzer exists to catch.
	NoSemantic bool
}

// Result is the outcome of one analysis run.
type Result struct {
	// Diagnostics is sorted by file, line, column, then code.
	Diagnostics []Diagnostic
	// FilesChecked is how many project files were analyzed.
	FilesChecked int
}

// Counts returns the number of error- and warning-level diagnostics.
func (r *Result) Counts() (errors, warnings int) {
	return countLevels(r.Diagnostics)
}

func countLevels(diags []Diagnostic) (errors, warnings int) {
	for _, d := range diags {
		if d.Severity == SevError {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// HasErrors reports whether any diagnostic is error level.
func (r *Result) HasErrors() bool {
	errs, _ := r.Counts()
	return errs > 0
}

// Analyze runs every pass over the project and returns the sorted
// diagnostics.
func Analyze(p *Project, opts Options) *Result {
	a := newAnalyzer(p, opts)
	a.parseRuleFiles()
	a.parseManifests()
	a.resolveInheritance()
	a.checkRules()
	a.checkComposites()
	a.checkReplacedRules()
	a.checkSemantics()
	a.checkReachability()
	sort.SliceStable(a.diags, func(i, j int) bool {
		x, y := a.diags[i], a.diags[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		if x.Col != y.Col {
			return x.Col < y.Col
		}
		if x.Code != y.Code {
			return x.Code < y.Code
		}
		return x.Msg < y.Msg
	})
	return &Result{Diagnostics: a.diags, FilesChecked: p.Len()}
}

// AnalyzeFile analyzes a single rule file in isolation — the analyzer
// equivalent of cvl.Lint, used by the lint HTTP endpoint. Parents outside
// the file are reported as warnings, not errors.
func AnalyzeFile(path string, content []byte) *Result {
	return AnalyzeFileOpts(path, content, Options{})
}

// AnalyzeFileOpts is AnalyzeFile with analysis options; ExternalParents
// is always forced on since a lone file cannot carry its parents.
func AnalyzeFileOpts(path string, content []byte, opts Options) *Result {
	p := NewProject()
	if IsManifestPath(path) {
		p.AddManifest(path, content)
	} else {
		p.AddRuleFile(path, content)
	}
	opts.ExternalParents = true
	return Analyze(p, opts)
}

func posOr(p yaml.Pos) (int, int) {
	if p.IsZero() {
		return 1, 1
	}
	return p.Line, p.Col
}
