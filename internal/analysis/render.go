package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// RenderText writes one line per diagnostic followed by a summary line.
// With quiet set, warnings are counted but not printed. suppressed is the
// number of findings a baseline filtered out (0 when none).
func RenderText(w io.Writer, diags []Diagnostic, filesChecked, suppressed int, quiet bool) {
	for _, d := range diags {
		if quiet && d.Severity != SevError {
			continue
		}
		fmt.Fprintln(w, d)
		for _, rel := range d.Related {
			fmt.Fprintf(w, "    %s:%d:%d: related: ", rel.File, rel.Line, rel.Col)
			if rel.Rule != "" {
				fmt.Fprintf(w, "rule %q: ", rel.Rule)
			}
			fmt.Fprintln(w, rel.Msg)
		}
	}
	errors, warnings := countLevels(diags)
	fmt.Fprintf(w, "%d file(s) checked, %d error(s), %d warning(s)", filesChecked, errors, warnings)
	if suppressed > 0 {
		fmt.Fprintf(w, ", %d suppressed by baseline", suppressed)
	}
	fmt.Fprintln(w)
}

// JSONDiagnostic is the machine-readable diagnostic shape, shared by the
// JSON renderer and the server's lint endpoint. Text carries the rendered
// one-line form for consumers that only display findings.
type JSONDiagnostic struct {
	Code     string        `json:"code"`
	Severity string        `json:"severity"`
	File     string        `json:"file"`
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	Rule     string        `json:"rule,omitempty"`
	Msg      string        `json:"msg"`
	Text     string        `json:"text"`
	Related  []JSONRelated `json:"related,omitempty"`
}

// JSONRelated is a secondary location in the wire shape.
type JSONRelated struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule,omitempty"`
	Msg  string `json:"msg"`
}

// JSON converts the diagnostic to its wire shape.
func (d Diagnostic) JSON() JSONDiagnostic {
	out := JSONDiagnostic{
		Code:     d.Code,
		Severity: d.Severity.String(),
		File:     d.File,
		Line:     d.Line,
		Col:      d.Col,
		Rule:     d.Rule,
		Msg:      d.Msg,
		Text:     d.String(),
	}
	for _, rel := range d.Related {
		out.Related = append(out.Related, JSONRelated{File: rel.File, Line: rel.Line, Col: rel.Col, Rule: rel.Rule, Msg: rel.Msg})
	}
	return out
}

// RenderJSON writes the diagnostics as one indented JSON object:
// {files_checked, errors, warnings, diagnostics: [...]}.
func RenderJSON(w io.Writer, diags []Diagnostic, filesChecked int) error {
	errors, warnings := countLevels(diags)
	out := struct {
		FilesChecked int              `json:"files_checked"`
		Errors       int              `json:"errors"`
		Warnings     int              `json:"warnings"`
		Diagnostics  []JSONDiagnostic `json:"diagnostics"`
	}{FilesChecked: filesChecked, Errors: errors, Warnings: warnings, Diagnostics: make([]JSONDiagnostic, 0, len(diags))}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, d.JSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// --- SARIF 2.1.0 ---

// SARIFSchemaURI is the JSON schema the SARIF renderer targets.
const SARIFSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	DefaultConfiguration sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	RuleIndex        int             `json:"ruleIndex"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// RenderSARIF writes the diagnostics as a SARIF 2.1.0 log with the full
// code catalog as the tool's rule metadata.
func RenderSARIF(w io.Writer, diags []Diagnostic) error {
	catalog := Catalog()
	rules := make([]sarifRule, 0, len(catalog))
	index := make(map[string]int, len(catalog))
	for i, c := range catalog {
		index[c.Code] = i
		rules = append(rules, sarifRule{
			ID:                   c.Code,
			ShortDescription:     sarifMessage{Text: c.Summary},
			DefaultConfiguration: sarifConfig{Level: c.Severity.String()},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		msg := d.Msg
		if d.Rule != "" {
			msg = fmt.Sprintf("rule %q: %s", d.Rule, d.Msg)
		}
		res := sarifResult{
			RuleID:    d.Code,
			RuleIndex: index[d.Code],
			Level:     d.Severity.String(),
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: max(d.Line, 1), StartColumn: max(d.Col, 1)},
				},
			}},
		}
		for _, rel := range d.Related {
			res.RelatedLocations = append(res.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: rel.File},
					Region:           sarifRegion{StartLine: max(rel.Line, 1), StartColumn: max(rel.Col, 1)},
				},
				Message: &sarifMessage{Text: rel.Msg},
			})
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cvlint", InformationURI: "https://example.com/configvalidator/docs/LINTING.md", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
