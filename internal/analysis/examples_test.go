package analysis

import "testing"

// Every catalog code must have a minimal triggering example (for
// cvlint -explain), and the example table must not carry codes the
// catalog no longer defines.
func TestExamplesComplete(t *testing.T) {
	known := map[string]bool{}
	for _, c := range Catalog() {
		known[c.Code] = true
		if Example(c.Code) == "" {
			t.Errorf("catalog code %s has no example", c.Code)
		}
	}
	for code := range codeExamples {
		if !known[code] {
			t.Errorf("example for %s, but the catalog does not define it", code)
		}
	}
}
