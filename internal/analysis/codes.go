package analysis

import "configvalidator/internal/analysis/sem"

// Diagnostic codes. Codes are stable: renderers, baselines, and SARIF
// consumers key on them. The one historical exception: the style codes
// originally shipped as CVL401–404 and moved to CVL501–504 when the
// CVL4xx block was assigned to semantic analysis (docs/LINTING.md has
// the baseline-migration note).
//
//	CVL0xx — single-file syntax and keyword errors
//	CVL1xx — inheritance-graph findings
//	CVL2xx — cross-file semantic findings
//	CVL3xx — manifest and reachability findings
//	CVL4xx — semantic (constraint-level) findings
//	CVL5xx — style and maintainability warnings
const (
	CodeSyntax          = "CVL001" // YAML syntax error
	CodeNotMapping      = "CVL002" // document or sequence element is not a mapping
	CodeUnknownKeyword  = "CVL003" // unknown keyword (with did-you-mean)
	CodeWrongGroup      = "CVL004" // keyword not valid for the rule's type
	CodeInvalidRule     = "CVL005" // rule fails semantic validation
	CodeDuplicateRule   = "CVL006" // duplicate rule (same type and name) in one file
	CodeDuplicateParent = "CVL007" // more than one parent_cvl_file directive
	CodeParentNotString = "CVL008" // parent_cvl_file is not a string

	CodeMissingParent = "CVL101" // parent rule file not found in the project
	CodeCycle         = "CVL102" // inheritance cycle
	CodeDeadOverride  = "CVL103" // override matches no inherited rule
	CodeShadowed      = "CVL104" // rule replaces an inherited rule without override
	CodeDeadDisabled  = "CVL105" // disabled matches no inherited rule

	CodeUnknownEntity   = "CVL201" // composite references an entity no manifest defines
	CodeUnknownRuleRef  = "CVL202" // composite references a rule name that resolves to nothing
	CodeBadRegex        = "CVL203" // invalid regular expression in a value matcher
	CodeRelativePath    = "CVL204" // path rule name is not an absolute path
	CodeContradiction   = "CVL205" // value listed as both preferred and non-preferred
	CodeMatchWithoutVal = "CVL206" // match spec declared without a value list

	CodeBadManifest      = "CVL301" // invalid manifest entry
	CodeMissingRuleFile  = "CVL302" // manifest references a rule file not in the project
	CodeUnreachableFile  = "CVL303" // rule file no manifest reaches
	CodeUselessTagFilter = "CVL304" // manifest tag filter selects no rule
	CodeDuplicateEntity  = "CVL305" // entity defined by more than one manifest

	// Semantic analysis (internal/analysis/sem).
	CodeUnsat                  = sem.CodeUnsat                  // CVL401: constraints admit no value
	CodeSubsumed               = sem.CodeSubsumed               // CVL402: rule never fires independently
	CodeInheritConflict        = sem.CodeInheritConflict        // CVL403: override contradicts inherited rule
	CodeCompositeTautology     = sem.CodeCompositeTautology     // CVL404: composite always true
	CodeCompositeContradiction = sem.CodeCompositeContradiction // CVL405: composite always false
	CodeSeverityConflict       = sem.CodeSeverityConflict       // CVL406: overlapping rules disagree on severity
	CodeTypeMismatch           = sem.CodeTypeMismatch           // CVL407: matcher can never match the key's declared type

	CodeMissingDescription = "CVL501" // rule has no description
	CodeMissingTags        = "CVL502" // rule has no tags
	CodeMissingOutputDesc  = "CVL503" // missing outcome description
	CodeImplicitMatch      = "CVL504" // value list without explicit match spec
)

// CodeInfo documents one diagnostic code for the catalog, SARIF rule
// metadata, and docs/LINTING.md.
type CodeInfo struct {
	// Code is the stable identifier, e.g. "CVL101".
	Code string
	// Summary is a one-line description.
	Summary string
	// Severity is the default severity. CVL101 drops to warning under
	// Options.ExternalParents; everything else is fixed.
	Severity Severity
}

// Catalog returns every diagnostic code in ascending order.
func Catalog() []CodeInfo {
	return []CodeInfo{
		{CodeSyntax, "YAML syntax error", SevError},
		{CodeNotMapping, "document or sequence element is not a mapping", SevError},
		{CodeUnknownKeyword, "unknown CVL keyword", SevError},
		{CodeWrongGroup, "keyword not valid for the rule's type", SevError},
		{CodeInvalidRule, "rule fails semantic validation", SevError},
		{CodeDuplicateRule, "duplicate rule (same type and name) in one file", SevError},
		{CodeDuplicateParent, "more than one parent_cvl_file directive", SevError},
		{CodeParentNotString, "parent_cvl_file is not a string", SevError},
		{CodeMissingParent, "parent rule file not found in the project", SevError},
		{CodeCycle, "inheritance cycle through parent_cvl_file", SevError},
		{CodeDeadOverride, "override: true matches no inherited rule", SevWarning},
		{CodeShadowed, "rule replaces an inherited rule without override: true", SevWarning},
		{CodeDeadDisabled, "disabled: true matches no inherited rule", SevWarning},
		{CodeUnknownEntity, "composite expression references an undefined entity", SevError},
		{CodeUnknownRuleRef, "composite expression references an undefined rule name", SevWarning},
		{CodeBadRegex, "invalid regular expression in a value matcher", SevError},
		{CodeRelativePath, "path rule name is not an absolute path", SevWarning},
		{CodeContradiction, "value listed as both preferred and non-preferred", SevError},
		{CodeMatchWithoutVal, "match spec declared without a value list", SevWarning},
		{CodeBadManifest, "invalid manifest entry", SevError},
		{CodeMissingRuleFile, "manifest references a rule file not in the project", SevError},
		{CodeUnreachableFile, "rule file is not referenced by any manifest", SevWarning},
		{CodeUselessTagFilter, "manifest tag filter selects no rule", SevWarning},
		{CodeDuplicateEntity, "entity defined by more than one manifest", SevWarning},
		{CodeUnsat, "rule constraints are unsatisfiable: no value can pass", SevError},
		{CodeSubsumed, "rule is subsumed by another rule and never fires independently", SevWarning},
		{CodeInheritConflict, "override contradicts the inherited rule it replaces", SevError},
		{CodeCompositeTautology, "composite expression is always true", SevWarning},
		{CodeCompositeContradiction, "composite expression is always false", SevError},
		{CodeSeverityConflict, "overlapping rules assign different severities to the same violation", SevWarning},
		{CodeTypeMismatch, "value matcher can never match the key's lens-declared type", SevError},
		{CodeMissingDescription, "rule has no description", SevWarning},
		{CodeMissingTags, "rule has no tags", SevWarning},
		{CodeMissingOutputDesc, "missing outcome description", SevWarning},
		{CodeImplicitMatch, "value list without explicit match spec (defaults to exact,any)", SevWarning},
	}
}

var codeSeverity = func() map[string]Severity {
	out := make(map[string]Severity)
	for _, c := range Catalog() {
		out[c.Code] = c.Severity
	}
	return out
}()

// severityOf returns the default severity for a code.
func severityOf(code string) Severity {
	if s, ok := codeSeverity[code]; ok {
		return s
	}
	return SevError
}
