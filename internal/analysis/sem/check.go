package sem

import (
	"fmt"
	"sort"

	"configvalidator/internal/cvl"
	"configvalidator/internal/lens"
)

// Semantic diagnostic codes. The analysis package re-exports these in its
// catalog; they live here so the checker has no dependency on it.
const (
	// CodeUnsat: a rule's (or a slot's joint) value constraints admit no
	// value at all.
	CodeUnsat = "CVL401"
	// CodeSubsumed: a rule can never fire independently of another rule
	// on the same slot.
	CodeSubsumed = "CVL402"
	// CodeInheritConflict: a child override admits no value the replaced
	// parent rule admitted.
	CodeInheritConflict = "CVL403"
	// CodeCompositeTautology: a composite expression is always true.
	CodeCompositeTautology = "CVL404"
	// CodeCompositeContradiction: a composite expression is always false.
	CodeCompositeContradiction = "CVL405"
	// CodeSeverityConflict: overlapping rules assign different severities
	// to a shared violating value.
	CodeSeverityConflict = "CVL406"
	// CodeTypeMismatch: a value matcher can never match the key's
	// lens-declared type.
	CodeTypeMismatch = "CVL407"
)

// Finding is one semantic diagnostic, anchored to rules rather than file
// positions; the analysis layer maps rules back to source locations.
type Finding struct {
	// Code is the CVL4xx diagnostic code.
	Code string
	// Rule is the primary rule the finding is about.
	Rule *cvl.Rule
	// Msg is the human-readable description.
	Msg string
	// Related names other rules involved (the subsuming rule, the
	// replaced parent, conflicting siblings, folded composite members).
	Related []RelatedRule
}

// RelatedRule is a secondary rule referenced by a finding.
type RelatedRule struct {
	Rule *cvl.Rule
	Msg  string
}

// Entity binds a manifest entity name to the rule units (rule file
// paths) evaluated for it, in evaluation order.
type Entity struct {
	Name  string
	Units []string
}

// Check runs the semantic checker over lowered rule units. entities is
// optional; when present, composite references resolve against each
// entity's units so member-rule constants can be folded into the
// composite truth tables.
func Check(units []*IR, entities []Entity) []Finding {
	c := &checker{
		units:    units,
		unitByID: make(map[string]*IR, len(units)),
	}
	for _, u := range units {
		if _, dup := c.unitByID[u.Unit]; !dup {
			c.unitByID[u.Unit] = u
		}
	}
	c.entities = entities
	for _, u := range units {
		c.checkUnit(u)
	}
	c.checkComposites()
	return c.dedupe()
}

// CheckReplacement compares a parent rule with the child rule that
// replaced it during inheritance resolution and reports CVL403 when the
// two admit provably disjoint value sets — the override does not narrow
// the inherited constraint, it contradicts it.
func CheckReplacement(parent, child *cvl.Rule) []Finding {
	if parent == nil || child == nil {
		return nil
	}
	pi, ci := lowerRule(parent), lowerRule(child)
	var out []Finding
	// Replacing a parent's exact preferred literals with different
	// literals is the normal override idiom — that is what override is
	// for. A contradiction is only meaningful when the parent expressed a
	// broader envelope: a regex or numeric matcher, or a rule defined
	// purely by its non-preferred values (the child then prefers exactly
	// what the parent forbade).
	deliberate := len(parent.PreferredValue) > 0 &&
		(parent.PreferredMatch.IsZero() || parent.PreferredMatch.Kind == cvl.MatchExact)
	if !deliberate && pi.Pass != nil && ci.Pass != nil &&
		!pi.Pass.ProvablyEmpty() && !ci.Pass.ProvablyEmpty() &&
		ci.Pass.ProvablyDisjoint(pi.Pass) {
		out = append(out, Finding{
			Code: CodeInheritConflict,
			Rule: child,
			Msg: fmt.Sprintf("override of rule %q accepts %s, disjoint from the inherited rule's accepted values %s",
				child.Name, ci.Pass.Describe(), pi.Pass.Describe()),
			Related: []RelatedRule{{Rule: parent, Msg: "inherited rule accepts " + pi.Pass.Describe()}},
		})
	}
	if pi.RowMode != RowNone && pi.RowMode == ci.RowMode && pi.RowCol == ci.RowCol &&
		pi.RowMode == RowRequire && pi.RowRegion != nil && ci.RowRegion != nil &&
		!pi.RowRegion.ProvablyEmpty() && !ci.RowRegion.ProvablyEmpty() &&
		ci.RowRegion.ProvablyDisjoint(pi.RowRegion) {
		out = append(out, Finding{
			Code: CodeInheritConflict,
			Rule: child,
			Msg: fmt.Sprintf("override of rule %q requires rows with %s in %s, disjoint from the inherited rule's required %s",
				child.Name, ci.RowCol, ci.RowRegion.Describe(), pi.RowRegion.Describe()),
			Related: []RelatedRule{{Rule: parent, Msg: "inherited rule requires " + pi.RowRegion.Describe()}},
		})
	}
	return out
}

type checker struct {
	units    []*IR
	unitByID map[string]*IR
	entities []Entity
	findings []Finding
}

func (c *checker) report(f Finding) { c.findings = append(c.findings, f) }

// checkUnit runs the per-rule and per-slot checks for one unit.
func (c *checker) checkUnit(u *IR) {
	slots := make(map[string][]*RuleIR)
	for _, ri := range u.Rules {
		c.checkRule(ri)
		if id := ri.slotID; id != "" {
			slots[id] = append(slots[id], ri)
		}
		if id := ri.valueSlot; id != "" {
			slots[id] = append(slots[id], ri)
		}
	}
	ids := make([]string, 0, len(slots))
	for id := range slots {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		c.checkSlot(slots[id])
	}
	c.checkRowRegions(u)
}

// checkRule emits the single-rule findings: unsatisfiable matchers
// (CVL401) and matchers incompatible with the key's declared type
// (CVL407).
func (c *checker) checkRule(ri *RuleIR) {
	r := ri.Rule
	if ri.Pass != nil && ri.Pass.ProvablyEmpty() {
		msg := fmt.Sprintf("rule %q can never pass: no value satisfies preferred %s while avoiding non-preferred %s",
			r.Name, describeOr(ri.Pref, "(none)"), describeOr(ri.NonPref, "(none)"))
		if ri.NonPref == nil {
			msg = fmt.Sprintf("rule %q can never pass: the preferred matcher %s matches no value", r.Name, describeOr(ri.Pref, "(none)"))
		}
		c.report(Finding{Code: CodeUnsat, Rule: r, Msg: msg})
	}
	if r.Type == cvl.TypePath && ri.CanNeverPass {
		c.report(Finding{Code: CodeUnsat, Rule: r, Msg: fmt.Sprintf(
			"rule %q can never pass: permission %04o has bits outside max_permission %04o",
			r.Name, r.Permission, r.MaxPermission)})
	}
	if ri.RowMode == RowRequire && ri.RowRegion != nil && ri.RowRegion.ProvablyEmpty() {
		c.report(Finding{Code: CodeUnsat, Rule: r, Msg: fmt.Sprintf(
			"rule %q can never pass: expect_rows %q but the constraints on column %q select %s",
			r.Name, r.ExpectRows, ri.RowCol, ri.RowRegion.Describe())})
	}
	c.checkDeclaredType(ri)
}

// checkDeclaredType proves CVL407: a matcher list disjoint from every
// legal value of the key under its lens.
func (c *checker) checkDeclaredType(ri *RuleIR) {
	if ri.Lens == "" || ri.Key == "" {
		return
	}
	vt, ok := lens.DeclaredType(ri.Lens, ri.Key)
	if !ok {
		return
	}
	legal := typeSet(vt)
	r := ri.Rule
	if ri.Pref != nil && !ri.Pref.ProvablyEmpty() && ri.Pref.ProvablyDisjoint(legal) {
		c.report(Finding{Code: CodeTypeMismatch, Rule: r, Msg: fmt.Sprintf(
			"rule %q prefers %s, but key %q under the %q lens only takes %s values (%s)",
			r.Name, ri.Pref.Describe(), ri.Key, ri.Lens, vt.Kind, legal.Describe())})
	}
	if ri.NonPref != nil && !ri.NonPref.ProvablyEmpty() && ri.NonPref.ProvablyDisjoint(legal) {
		c.report(Finding{Code: CodeTypeMismatch, Rule: r, Msg: fmt.Sprintf(
			"rule %q rejects %s, but key %q under the %q lens only takes %s values (%s) — the check can never fire",
			r.Name, ri.NonPref.Describe(), ri.Key, ri.Lens, vt.Kind, legal.Describe())})
	}
}

// checkSlot runs the joint checks over rules constraining the same value
// slot: joint unsatisfiability (CVL401), subsumption (CVL402), and
// severity conflicts (CVL406).
func (c *checker) checkSlot(rules []*RuleIR) {
	if len(rules) < 2 {
		return
	}
	// Joint conjunction: all rules with value checks must be satisfiable
	// together, since every one of them evaluates the same value.
	conj, all := Any(), true
	for _, ri := range rules {
		if ri.Pass == nil {
			all = false
			break
		}
		conj, _ = conj.Intersect(ri.Pass)
	}
	if all && conj.ProvablyEmpty() {
		first := rules[0]
		var related []RelatedRule
		for _, ri := range rules[1:] {
			related = append(related, RelatedRule{Rule: ri.Rule, Msg: "accepts " + ri.Pass.Describe()})
		}
		anyEmptyAlone := false
		for _, ri := range rules {
			if ri.Pass.ProvablyEmpty() {
				anyEmptyAlone = true // already reported per-rule
			}
		}
		if !anyEmptyAlone {
			c.report(Finding{Code: CodeUnsat, Rule: first.Rule, Msg: fmt.Sprintf(
				"rules on %s are jointly unsatisfiable: no value passes all of them",
				slotLabel(first)), Related: related})
		}
	}
	for i, a := range rules {
		for j, b := range rules {
			if i == j {
				continue
			}
			c.checkSubsumed(a, b, i < j)
			if i < j {
				c.checkSeverity(a, b)
			}
		}
	}
}

// checkSubsumed reports CVL402 when b's violations are a subset of a's:
// whenever b fires, a fires too, so b never fires independently.
// reportMutual keeps mutually-subsuming (identical) pairs from being
// reported twice.
func (c *checker) checkSubsumed(a, b *RuleIR, reportMutual bool) {
	if a.Viol == nil || b.Viol == nil || !a.ViolExact {
		return
	}
	if b.Viol.ProvablyEmpty() || !b.Viol.SubsetOf(a.Viol) {
		return
	}
	// Presence semantics: if b fires on an absent key while a passes,
	// b still fires independently.
	if !b.AbsentPass && a.AbsentPass {
		return
	}
	if b.ViolExact && a.Viol.SubsetOf(b.Viol) && !reportMutual {
		return // mutual: the i<j orientation already reported it
	}
	c.report(Finding{
		Code: CodeSubsumed,
		Rule: b.Rule,
		Msg: fmt.Sprintf("rule %q is subsumed by rule %q: every value it rejects (%s) is already rejected there, so it never fires independently",
			b.Rule.Name, a.Rule.Name, b.Viol.Describe()),
		Related: []RelatedRule{{Rule: a.Rule, Msg: "rejects " + a.Viol.Describe()}},
	})
}

// checkSeverity reports CVL406 when two same-slot rules share a concrete
// violating value but label it with different severities. The witness is
// re-verified against the rules' actual matchers before reporting.
func (c *checker) checkSeverity(a, b *RuleIR) {
	if a.Rule.Severity == "" || b.Rule.Severity == "" || a.Rule.Severity == b.Rule.Severity {
		return
	}
	if a.Viol == nil || b.Viol == nil {
		return
	}
	w, ok := a.Viol.Witness(b.Viol)
	if !ok {
		return
	}
	ra, oka := ruleRejects(a.Rule, w)
	rb, okb := ruleRejects(b.Rule, w)
	if !oka || !okb || !ra || !rb {
		return
	}
	c.report(Finding{
		Code: CodeSeverityConflict,
		Rule: b.Rule,
		Msg: fmt.Sprintf("rules %q (severity %s) and %q (severity %s) both reject value %q but disagree on severity",
			a.Rule.Name, a.Rule.Severity, b.Rule.Name, b.Rule.Severity, w),
		Related: []RelatedRule{{Rule: a.Rule, Msg: "severity " + a.Rule.Severity}},
	})
}

// checkRowRegions proves CVL401 across schema rules of one unit whose
// row constraints address the same column: a rule requiring rows inside a
// region every row of which another rule forbids can never pass.
func (c *checker) checkRowRegions(u *IR) {
	byCol := make(map[string][]*RuleIR)
	for _, ri := range u.Rules {
		if ri.RowMode != RowNone && ri.RowRegion != nil {
			byCol[ri.RowCol] = append(byCol[ri.RowCol], ri)
		}
	}
	cols := make([]string, 0, len(byCol))
	for col := range byCol {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		group := byCol[col]
		for _, need := range group {
			if need.RowMode != RowRequire {
				continue
			}
			for _, ban := range group {
				if ban.RowMode != RowForbid || ban == need {
					continue
				}
				// Every row the require-rule accepts is forbidden: need
				// the forbidden region to be exact (an over-approximated
				// ban could cover rows it does not actually forbid).
				if !ban.RowExact || !need.RowRegion.SubsetOf(ban.RowRegion) {
					continue
				}
				c.report(Finding{
					Code: CodeUnsat,
					Rule: need.Rule,
					Msg: fmt.Sprintf("rule %q requires rows with %s in %s, but rule %q forbids every such row",
						need.Rule.Name, col, need.RowRegion.Describe(), ban.Rule.Name),
					Related: []RelatedRule{{Rule: ban.Rule, Msg: "forbids rows with " + col + " in " + ban.RowRegion.Describe()}},
				})
			}
		}
	}
}

func slotLabel(ri *RuleIR) string {
	switch ri.Rule.Type {
	case cvl.TypeSchema:
		return fmt.Sprintf("schema query %q", ri.Rule.QueryConstraints)
	case cvl.TypeScript:
		return fmt.Sprintf("feature %q", ri.Key)
	default:
		return fmt.Sprintf("key %q", ri.Key)
	}
}

// --- composite truth tables (CVL404 / CVL405) ---

// maxAssignments bounds truth-table enumeration per composite.
const maxAssignments = 4096

// missingValue marks an absent configuration key in a value variable's
// domain.
const missingValue = "\x00missing"

type varKey struct {
	isValue bool
	entity  string
	key     string
	section string
}

// compositeFact is a proven evaluation constant for a rule referenced by
// a composite.
type compositeFact struct {
	value  bool
	member *cvl.Rule
}

// checkComposites enumerates each composite's truth table over its free
// variables, folding proven member-rule constants, and iterates to a
// fixpoint so composites proven constant feed into composites that
// reference them.
func (c *checker) checkComposites() {
	type compo struct {
		ri     *RuleIR
		entity string // entity whose units define this composite; "" unknown
	}
	var composites []compo
	definedIn := make(map[*cvl.Rule]string)
	if len(c.entities) > 0 {
		for _, e := range c.entities {
			for _, unit := range e.Units {
				u := c.unitByID[unit]
				if u == nil {
					continue
				}
				for _, ri := range u.Rules {
					if ri.Rule.Type == cvl.TypeComposite && ri.Rule.CompositeExpr != nil {
						if _, seen := definedIn[ri.Rule]; !seen {
							definedIn[ri.Rule] = e.Name
						}
					}
				}
			}
		}
	}
	seen := make(map[*cvl.Rule]bool)
	for _, u := range c.units {
		for _, ri := range u.Rules {
			if ri.Rule.Type == cvl.TypeComposite && ri.Rule.CompositeExpr != nil && !seen[ri.Rule] {
				seen[ri.Rule] = true
				composites = append(composites, compo{ri: ri, entity: definedIn[ri.Rule]})
			}
		}
	}
	if len(composites) == 0 {
		return
	}
	// proven maps (entity, rule name) to a proven composite constant.
	proven := make(map[varKey]compositeFact)
	reported := make(map[*cvl.Rule]bool)
	for round := 0; round < len(composites)+1; round++ {
		changed := false
		for _, co := range composites {
			if reported[co.ri.Rule] {
				continue
			}
			verdict, consts, ok := c.tabulate(co.ri.Rule, proven)
			if !ok || verdict == nil {
				continue
			}
			reported[co.ri.Rule] = true
			changed = true
			if co.entity != "" {
				proven[varKey{entity: co.entity, key: co.ri.Rule.Name}] = compositeFact{value: *verdict, member: co.ri.Rule}
			}
			var related []RelatedRule
			for _, cf := range consts {
				if cf.member != nil {
					word := "never passes"
					if cf.value {
						word = "always passes"
					}
					related = append(related, RelatedRule{Rule: cf.member, Msg: "member rule " + word})
				}
			}
			if *verdict {
				c.report(Finding{Code: CodeCompositeTautology, Rule: co.ri.Rule, Msg: fmt.Sprintf(
					"composite rule %q is always true given its member rules' domains: %s",
					co.ri.Rule.Name, co.ri.Rule.CompositeExpr.String()), Related: related})
			} else {
				c.report(Finding{Code: CodeCompositeContradiction, Rule: co.ri.Rule, Msg: fmt.Sprintf(
					"composite rule %q is always false given its member rules' domains: %s",
					co.ri.Rule.Name, co.ri.Rule.CompositeExpr.String()), Related: related})
			}
		}
		if !changed {
			break
		}
	}
}

// tabulate enumerates the truth table of one composite. It returns the
// constant verdict (nil when the expression can go both ways), the
// member constants that were folded, and ok=false when the table is too
// large to enumerate.
func (c *checker) tabulate(r *cvl.Rule, proven map[varKey]compositeFact) (*bool, []compositeFact, bool) {
	refs := r.CompositeExpr.Refs()
	boolConst := make(map[varKey]compositeFact)
	var boolVars []varKey
	valueDomains := make(map[varKey][]string)
	boolSeen := make(map[varKey]bool)
	for _, ref := range refs {
		if ref.WantValue || ref.Op != "" {
			vk := varKey{isValue: true, entity: ref.Entity, key: ref.Key, section: ref.Section}
			if ref.Op != "" && !containsStr(valueDomains[vk], ref.Literal) {
				valueDomains[vk] = append(valueDomains[vk], ref.Literal)
			} else if _, ok := valueDomains[vk]; !ok {
				valueDomains[vk] = nil
			}
			continue
		}
		vk := varKey{entity: ref.Entity, key: ref.Key}
		if boolSeen[vk] {
			continue
		}
		boolSeen[vk] = true
		if cf, ok := c.resolveRuleConst(ref.Entity, ref.Key, proven); ok {
			boolConst[vk] = cf
		} else {
			boolVars = append(boolVars, vk)
		}
	}
	// Complete each value domain with "", a distinct other value, and the
	// missing marker.
	valueVars := make([]varKey, 0, len(valueDomains))
	for vk := range valueDomains {
		valueVars = append(valueVars, vk)
	}
	sort.Slice(valueVars, func(i, j int) bool { return varLess(valueVars[i], valueVars[j]) })
	sort.Slice(boolVars, func(i, j int) bool { return varLess(boolVars[i], boolVars[j]) })
	total := 1
	for _, vk := range valueVars {
		dom := valueDomains[vk]
		if !containsStr(dom, "") {
			dom = append(dom, "")
		}
		dom = append(dom, freshOther(dom), missingValue)
		valueDomains[vk] = dom
		total *= len(dom)
		if total > maxAssignments {
			return nil, nil, false
		}
	}
	for range boolVars {
		total *= 2
		if total > maxAssignments {
			return nil, nil, false
		}
	}

	res := &tableResolver{boolConst: boolConst, bools: make(map[varKey]bool), values: make(map[varKey]string)}
	anyTrue, anyFalse := false, false
	for idx := 0; idx < total; idx++ {
		n := idx
		for _, vk := range boolVars {
			res.bools[vk] = n%2 == 1
			n /= 2
		}
		for _, vk := range valueVars {
			dom := valueDomains[vk]
			res.values[vk] = dom[n%len(dom)]
			n /= len(dom)
		}
		v, err := r.CompositeExpr.Eval(res)
		if err != nil {
			return nil, nil, false
		}
		if v {
			anyTrue = true
		} else {
			anyFalse = true
		}
		if anyTrue && anyFalse {
			return nil, nil, true
		}
	}
	var consts []compositeFact
	keys := make([]varKey, 0, len(boolConst))
	for vk := range boolConst {
		keys = append(keys, vk)
	}
	sort.Slice(keys, func(i, j int) bool { return varLess(keys[i], keys[j]) })
	for _, vk := range keys {
		consts = append(consts, boolConst[vk])
	}
	verdict := anyTrue
	return &verdict, consts, true
}

// resolveRuleConst resolves a bare composite reference to a proven
// constant: a member rule that can never pass or never fail, or a
// composite already proven constant.
func (c *checker) resolveRuleConst(entity, key string, proven map[varKey]compositeFact) (compositeFact, bool) {
	if cf, ok := proven[varKey{entity: entity, key: key}]; ok {
		return cf, true
	}
	for _, e := range c.entities {
		if e.Name != entity {
			continue
		}
		for _, unit := range e.Units {
			u := c.unitByID[unit]
			if u == nil {
				continue
			}
			ri, ok := u.ByName(key)
			if !ok || ri.Rule.Type == cvl.TypeComposite {
				continue
			}
			if ri.CanNeverPass {
				return compositeFact{value: false, member: ri.Rule}, true
			}
			if ri.CanNeverFail {
				return compositeFact{value: true, member: ri.Rule}, true
			}
			return compositeFact{}, false // rule exists, outcome open
		}
	}
	return compositeFact{}, false
}

// tableResolver answers composite references from one enumerated
// assignment.
type tableResolver struct {
	boolConst map[varKey]compositeFact
	bools     map[varKey]bool
	values    map[varKey]string
}

func (t *tableResolver) RuleResult(entity, rule string) (bool, bool) {
	vk := varKey{entity: entity, key: rule}
	if cf, ok := t.boolConst[vk]; ok {
		return cf.value, true
	}
	if v, ok := t.bools[vk]; ok {
		return v, true
	}
	return false, false
}

func (t *tableResolver) ConfigValue(entity, key, section string) (string, bool) {
	vk := varKey{isValue: true, entity: entity, key: key, section: section}
	v, ok := t.values[vk]
	if !ok {
		// A bare reference fell back to key existence but no value
		// variable exists for the key: model existence as a dedicated
		// boolean drawn from the bool table.
		bk := varKey{entity: entity, key: key}
		if b, ok := t.bools[bk]; ok && b {
			return "present", true
		}
		if cf, ok := t.boolConst[bk]; ok && cf.value {
			return "present", true
		}
		return "", false
	}
	if v == missingValue {
		return "", false
	}
	return v, true
}

func containsStr(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// freshOther returns a value distinct from every domain member, standing
// for "any other present value".
func freshOther(dom []string) string {
	cand := "other"
	for containsStr(dom, cand) {
		cand += "'"
	}
	return cand
}

func varLess(a, b varKey) bool {
	if a.isValue != b.isValue {
		return !a.isValue
	}
	if a.entity != b.entity {
		return a.entity < b.entity
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.section < b.section
}

// dedupe removes findings repeated across units (shared rule pointers
// from inheritance) and orders the result deterministically.
func (c *checker) dedupe() []Finding {
	type fkey struct {
		code string
		rule *cvl.Rule
		msg  string
	}
	seen := make(map[fkey]bool)
	out := make([]Finding, 0, len(c.findings))
	for _, f := range c.findings {
		k := fkey{f.Code, f.Rule, f.Msg}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule.Source != b.Rule.Source {
			return a.Rule.Source < b.Rule.Source
		}
		if a.Rule.Line != b.Rule.Line {
			return a.Rule.Line < b.Rule.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	return out
}
