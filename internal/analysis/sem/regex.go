package sem

import (
	"regexp"
	"regexp/syntax"
	"strconv"
	"strings"
)

// Bounded regex-language approximation. The engine matches value regexes
// UNANCHORED (regexp.MatchString), so the matched language of a pattern
// is "every string containing a match". Three strategies, in order of
// precision:
//
//  1. Anchored patterns (^...$) whose language is small are expanded to
//     an exact finite value set: "^[1-4]$" becomes {"1","2","3","4"},
//     and the CIS-style bounded-integer alternations up to a few hundred
//     values expand fully.
//  2. Anchored patterns built from digit classes — the idiom for large
//     integer ranges like "ports >= 1024" — are approximated by numeric
//     intervals: each alternation branch contributes [min, max] read off
//     its digit positions. The result over-approximates (it admits
//     non-canonical spellings such as "0022"), which keeps emptiness and
//     disjointness proofs sound.
//  3. Everything else becomes an opaque predicate over the compiled
//     regex: membership queries stay precise, set-level comparisons
//     return "unknown".

// enumLimit bounds finite expansion of an anchored regex.
const enumLimit = 512

// digitBranchLimit bounds the interval fan-out of one digit branch.
const digitBranchLimit = 64

// regexSet approximates the set of strings the pattern matches under the
// engine's semantics. exact reports whether the set equals the matched
// language (not merely over-approximates it). Invalid patterns — already
// reported as CVL203 by the analyzer — yield the universe, unknown.
func regexSet(pattern string, caseInsensitive bool) (set *Set, exact bool) {
	full := pattern
	if caseInsensitive {
		full = "(?i)" + pattern
	}
	re, err := regexp.Compile(full)
	if err != nil {
		return Any(), false
	}
	parsed, err := syntax.Parse(full, syntax.Perl)
	if err != nil {
		return Any(), false
	}
	parsed = parsed.Simplify()
	if inner, ok := stripAnchors(parsed); ok {
		if vals, ok := enumRegexp(inner, enumLimit); ok {
			return Finite(vals...), true
		}
		if ivs, ok := digitIntervals(inner); ok {
			return Numeric(ivs...), false
		}
	}
	return Pred("matching /"+pattern+"/", re.MatchString), false
}

// stripAnchors unwraps a fully anchored pattern ^X$ and returns X. Only
// fully anchored patterns have an enumerable language; an unanchored
// pattern matches every string containing an occurrence.
func stripAnchors(re *syntax.Regexp) (*syntax.Regexp, bool) {
	if re.Op != syntax.OpConcat || len(re.Sub) < 2 {
		return nil, false
	}
	first, last := re.Sub[0], re.Sub[len(re.Sub)-1]
	if !isBeginAnchor(first.Op) || !isEndAnchor(last.Op) {
		return nil, false
	}
	mid := re.Sub[1 : len(re.Sub)-1]
	switch len(mid) {
	case 0:
		return &syntax.Regexp{Op: syntax.OpEmptyMatch}, true
	case 1:
		return mid[0], true
	default:
		return &syntax.Regexp{Op: syntax.OpConcat, Sub: mid}, true
	}
}

func isBeginAnchor(op syntax.Op) bool {
	return op == syntax.OpBeginText || op == syntax.OpBeginLine
}

func isEndAnchor(op syntax.Op) bool {
	return op == syntax.OpEndText || op == syntax.OpEndLine
}

// enumRegexp expands a (stripped) regex into its full finite language, up
// to limit strings. It fails on unbounded operators and on case-folded
// literals (the folded expansion explodes and the Pred fallback stays
// precise for membership anyway).
func enumRegexp(re *syntax.Regexp, limit int) ([]string, bool) {
	switch re.Op {
	case syntax.OpEmptyMatch:
		return []string{""}, true
	case syntax.OpLiteral:
		if re.Flags&syntax.FoldCase != 0 {
			return nil, false
		}
		return []string{string(re.Rune)}, true
	case syntax.OpCharClass:
		var out []string
		for i := 0; i+1 < len(re.Rune); i += 2 {
			for r := re.Rune[i]; r <= re.Rune[i+1]; r++ {
				if len(out) >= limit {
					return nil, false
				}
				out = append(out, string(r))
			}
		}
		return out, true
	case syntax.OpCapture:
		return enumRegexp(re.Sub[0], limit)
	case syntax.OpAlternate:
		var out []string
		for _, sub := range re.Sub {
			vals, ok := enumRegexp(sub, limit)
			if !ok || len(out)+len(vals) > limit {
				return nil, false
			}
			out = append(out, vals...)
		}
		return dedupeSorted(out), true
	case syntax.OpConcat:
		out := []string{""}
		for _, sub := range re.Sub {
			vals, ok := enumRegexp(sub, limit)
			if !ok || len(out)*len(vals) > limit {
				return nil, false
			}
			next := make([]string, 0, len(out)*len(vals))
			for _, prefix := range out {
				for _, v := range vals {
					next = append(next, prefix+v)
				}
			}
			out = next
		}
		return out, true
	case syntax.OpQuest:
		vals, ok := enumRegexp(re.Sub[0], limit)
		if !ok || len(vals)+1 > limit {
			return nil, false
		}
		return dedupeSorted(append(vals, "")), true
	case syntax.OpRepeat:
		if re.Max < 0 || re.Max > 8 {
			return nil, false
		}
		base, ok := enumRegexp(re.Sub[0], limit)
		if !ok {
			return nil, false
		}
		var out []string
		tier := []string{""}
		for n := 0; n <= re.Max; n++ {
			if n >= re.Min {
				if len(out)+len(tier) > limit {
					return nil, false
				}
				out = append(out, tier...)
			}
			if n == re.Max {
				break
			}
			if len(tier)*len(base) > limit {
				return nil, false
			}
			next := make([]string, 0, len(tier)*len(base))
			for _, prefix := range tier {
				for _, v := range base {
					next = append(next, prefix+v)
				}
			}
			tier = next
		}
		return dedupeSorted(out), true
	default:
		return nil, false
	}
}

// digitIntervals approximates the numeric image of a regex whose branches
// are all digit sequences. Each alternation branch of fixed digit layout
// contributes the interval [all-min-digits, all-max-digits] — an
// over-approximation of the branch's language viewed as numbers.
func digitIntervals(re *syntax.Regexp) ([]interval, bool) {
	var branches []*syntax.Regexp
	flatten := re
	for flatten.Op == syntax.OpCapture {
		flatten = flatten.Sub[0]
	}
	if flatten.Op == syntax.OpAlternate {
		branches = flatten.Sub
	} else {
		branches = []*syntax.Regexp{flatten}
	}
	var out []interval
	for _, b := range branches {
		spans, ok := digitSpans(b)
		if !ok {
			return nil, false
		}
		for _, s := range spans {
			if s.lo == "" {
				return nil, false // empty match is not a number
			}
			lo, err1 := strconv.ParseFloat(s.lo, 64)
			hi, err2 := strconv.ParseFloat(s.hi, 64)
			if err1 != nil || err2 != nil {
				return nil, false
			}
			out = append(out, interval{lo: lo, hi: hi})
		}
	}
	return out, true
}

// digitSpan is a partially built branch: the string of minimum digits and
// of maximum digits, position by position.
type digitSpan struct{ lo, hi string }

// digitSpans walks one branch and returns every (min,max) digit layout it
// can produce. Optional elements (x? / x{n,m}) fork the layout list.
func digitSpans(re *syntax.Regexp) ([]digitSpan, bool) {
	spans := []digitSpan{{}}
	var walk func(r *syntax.Regexp) bool
	walk = func(r *syntax.Regexp) bool {
		switch r.Op {
		case syntax.OpEmptyMatch:
			return true
		case syntax.OpCapture:
			return walk(r.Sub[0])
		case syntax.OpConcat:
			for _, sub := range r.Sub {
				if !walk(sub) {
					return false
				}
			}
			return true
		case syntax.OpLiteral:
			s := string(r.Rune)
			if strings.Trim(s, "0123456789") != "" {
				return false
			}
			for i := range spans {
				spans[i].lo += s
				spans[i].hi += s
			}
			return true
		case syntax.OpCharClass:
			lo, hi, ok := digitClassBounds(r)
			if !ok {
				return false
			}
			for i := range spans {
				spans[i].lo += string(lo)
				spans[i].hi += string(hi)
			}
			return true
		case syntax.OpQuest:
			return forkRepeat(r.Sub[0], 0, 1, &spans, walkOne(&spans, walk))
		case syntax.OpRepeat:
			if r.Max < 0 || r.Max > 8 {
				return false
			}
			return forkRepeat(r.Sub[0], r.Min, r.Max, &spans, walkOne(&spans, walk))
		default:
			return false
		}
	}
	if !walk(re) {
		return nil, false
	}
	return spans, true
}

// walkOne adapts the branch walker so forkRepeat can run it against a
// scoped copy of the span list.
func walkOne(spans *[]digitSpan, walk func(*syntax.Regexp) bool) func(r *syntax.Regexp, base []digitSpan) ([]digitSpan, bool) {
	return func(r *syntax.Regexp, base []digitSpan) ([]digitSpan, bool) {
		saved := *spans
		*spans = append([]digitSpan(nil), base...)
		ok := walk(r)
		result := *spans
		*spans = saved
		return result, ok
	}
}

// forkRepeat expands sub{min,max} into one span variant per repeat count.
func forkRepeat(sub *syntax.Regexp, min, max int, spans *[]digitSpan, apply func(*syntax.Regexp, []digitSpan) ([]digitSpan, bool)) bool {
	var out []digitSpan
	tier := *spans
	for n := 0; n <= max; n++ {
		if n >= min {
			out = append(out, tier...)
		}
		if n == max {
			break
		}
		next, ok := apply(sub, tier)
		if !ok {
			return false
		}
		tier = next
	}
	if len(out) > digitBranchLimit {
		return false
	}
	*spans = out
	return true
}

// digitClassBounds returns the smallest and largest digit of a character
// class that contains only digits.
func digitClassBounds(re *syntax.Regexp) (lo, hi rune, ok bool) {
	if len(re.Rune) == 0 {
		return 0, 0, false
	}
	lo, hi = re.Rune[0], re.Rune[len(re.Rune)-1]
	for i := 0; i+1 < len(re.Rune); i += 2 {
		if re.Rune[i] < '0' || re.Rune[i+1] > '9' {
			return 0, 0, false
		}
	}
	return lo, hi, true
}
