package sem

import (
	"regexp"
	"strconv"
	"strings"

	"configvalidator/internal/cvl"
	"configvalidator/internal/lens"
	"configvalidator/internal/schema"
)

// defaultLenses resolves a rule's file_context entries to lenses, the
// same way the engine picks a lens for a discovered config file.
var defaultLenses = lens.Default()

// RowMode classifies a schema rule's row-count expectation.
type RowMode int

// Row modes.
const (
	// RowNone means the rule places no analyzable row-count constraint.
	RowNone RowMode = iota
	// RowForbid means no row may satisfy the constraints (expect_rows 0).
	RowForbid
	// RowRequire means at least one row must satisfy the constraints.
	RowRequire
)

// RuleIR is one rule lowered into the constraint IR: its value matchers
// as abstract sets, presence behavior, and derived pass/fail facts.
type RuleIR struct {
	// Rule is the source rule.
	Rule *cvl.Rule
	// Unit names the resolved rule set the rule was lowered in.
	Unit string
	// Lens is the lens its file_context resolves to; "" when unknown.
	Lens string
	// Key is the constrained configuration key (tree: the config key;
	// script: the feature); "" when the rule has no key slot.
	Key string

	// Pref and NonPref approximate the preferred / non-preferred
	// matchers' languages; nil when the list is absent.
	Pref, NonPref *Set
	// PrefExact / NonPrefExact report whether the approximations are
	// exact languages rather than over-approximations.
	PrefExact, NonPrefExact bool

	// Pass over-approximates the values on which the rule passes;
	// Viol over-approximates the values on which it fails. Exact flags
	// as above. Both are nil when the rule matches no values at all.
	Pass, Viol           *Set
	PassExact, ViolExact bool

	// AbsentPass mirrors the rule's behavior when the key is missing.
	AbsentPass bool

	// Row constraints for schema rules whose conjunctive constraints
	// all address one column: RowCol is the column, RowRegion the
	// region of column values the constraints select.
	RowMode   RowMode
	RowCol    string
	RowRegion *Set
	RowExact  bool

	// CanNeverPass / CanNeverFail are proven evaluation constants:
	// the rule fails (or passes) on every possible configuration.
	CanNeverPass bool
	CanNeverFail bool

	// slotID groups rules that constrain the same value slot.
	slotID string
	// valueSlot groups schema rules whose value matchers apply to the
	// same projected rows and columns.
	valueSlot string
}

// IR is the lowered form of one resolved rule set (post-inheritance,
// post-override): the input contract shared by the semantic checker and
// the planned rule compiler.
type IR struct {
	// Unit names the rule set, typically the rule file path.
	Unit string
	// Rules holds the lowered rules in input order.
	Rules []*RuleIR
	// byName indexes rules by rule name (first definition wins), used to
	// resolve composite references.
	byName map[string]*RuleIR
}

// ByName returns the lowered rule with the given name.
func (ir *IR) ByName(name string) (*RuleIR, bool) {
	r, ok := ir.byName[name]
	return r, ok
}

// Lower lowers a resolved rule set into the constraint IR. Rules must be
// post-inheritance: every entry is an effective rule, with overridden
// parents already replaced.
func Lower(unit string, rules []*cvl.Rule) *IR {
	ir := &IR{Unit: unit, byName: make(map[string]*RuleIR, len(rules))}
	for _, r := range rules {
		if r == nil || r.Disabled {
			continue
		}
		ri := lowerRule(r)
		ri.Unit = unit
		ir.Rules = append(ir.Rules, ri)
		if _, dup := ir.byName[r.Name]; !dup {
			ir.byName[r.Name] = ri
		}
	}
	return ir
}

// LowerRule lowers a single rule outside any rule set, for pairwise
// comparisons such as inheritance replacement checks.
func LowerRule(r *cvl.Rule) *RuleIR {
	return lowerRule(r)
}

func lowerRule(r *cvl.Rule) *RuleIR {
	ri := &RuleIR{Rule: r, AbsentPass: r.AbsentPass}
	switch r.Type {
	case cvl.TypeTree:
		ri.Key = r.Name
		ri.Lens = lensNameFor(r.FileContext)
		ri.slotID = "tree|" + r.Name
		lowerValueMatchers(ri)
	case cvl.TypeScript:
		ri.Key = r.ScriptFeature
		ri.slotID = "script|" + r.ScriptFeature
		lowerValueMatchers(ri)
	case cvl.TypeSchema:
		lowerSchema(ri)
	case cvl.TypePath:
		lowerPath(ri)
	case cvl.TypeComposite:
		// Composite semantics live in the checker's truth-table pass.
	}
	return ri
}

// lensNameFor resolves the first file_context entry that maps to a
// registered lens.
func lensNameFor(contexts []string) string {
	for _, fc := range contexts {
		if l, ok := defaultLenses.ForFile(fc); ok {
			return l.Name()
		}
	}
	return ""
}

// lowerValueMatchers fills Pref/NonPref/Pass/Viol from the rule's value
// lists, mirroring the engine's checkValue: a candidate fails when it
// matches any non-preferred value, then must match the preferred values
// when that list is non-empty.
func lowerValueMatchers(ri *RuleIR) {
	r := ri.Rule
	if len(r.PreferredValue) > 0 {
		ri.Pref, ri.PrefExact = matchDomain(r.PreferredValue, r.PreferredMatch, r.CaseInsensitive)
	}
	if len(r.NonPreferredValue) > 0 {
		ri.NonPref, ri.NonPrefExact = matchDomain(r.NonPreferredValue, r.NonPreferredMatch, r.CaseInsensitive)
	}
	if ri.Pref == nil && ri.NonPref == nil {
		return
	}
	pass, passExact := Any(), true
	if ri.NonPref != nil {
		comp, compExact := ri.NonPref.Complement()
		pass, passExact = comp, compExact && ri.NonPrefExact
	}
	if ri.Pref != nil {
		inter, interExact := pass.Intersect(ri.Pref)
		pass, passExact = inter, passExact && ri.PrefExact && interExact
	}
	ri.Pass, ri.PassExact = pass, passExact

	switch {
	case ri.Pref != nil && ri.NonPref == nil:
		ri.Viol, ri.ViolExact = ri.Pref.Complement()
		ri.ViolExact = ri.ViolExact && ri.PrefExact
	case ri.Pref == nil && ri.NonPref != nil:
		ri.Viol, ri.ViolExact = ri.NonPref, ri.NonPrefExact
	default:
		comp, compExact := ri.Pref.Complement()
		viol, unionExact := ri.NonPref.Union(comp)
		ri.Viol, ri.ViolExact = viol, compExact && unionExact && ri.PrefExact && ri.NonPrefExact
	}

	ri.CanNeverPass = ri.Pass.ProvablyEmpty() && !ri.AbsentPass
	ri.CanNeverFail = ri.Viol.ProvablyEmpty() && ri.AbsentPass
}

// lowerSchema handles schema rules: the row-count constraint decomposes
// into a per-column region when every conjunctive atom addresses the same
// column, and value matchers group by their projection (constraints,
// arguments, columns).
func lowerSchema(ri *RuleIR) {
	r := ri.Rule
	if len(r.PreferredValue) > 0 || len(r.NonPreferredValue) > 0 {
		ri.valueSlot = "schema|" + r.QueryConstraints + "\x00" +
			strings.Join(r.QueryConstraintsValue, "\x01") + "\x00" +
			strings.Join(r.QueryColumns, "\x01") + "\x00" + r.ExpectRows
		lowerValueMatchers(ri)
		// A schema rule's absent case is "no matching rows"; the engine
		// has no absent_pass for schema, so neither constant applies.
		ri.CanNeverPass = ri.Pass != nil && ri.Pass.ProvablyEmpty()
		ri.CanNeverFail = false
	}
	ri.RowMode = rowModeOf(r.ExpectRows)
	if ri.RowMode == RowNone || r.QueryConstraints == "" {
		return
	}
	atoms, conjunctive, err := schema.ConjunctiveAtoms(r.QueryConstraints, r.QueryConstraintsValue)
	if err != nil || !conjunctive || len(atoms) == 0 {
		ri.RowMode = RowNone
		return
	}
	col := atoms[0].Column
	region, exact := Any(), true
	for _, a := range atoms {
		if a.Column != col {
			ri.RowMode = RowNone // multi-column constraints don't decompose
			return
		}
		ar, arExact := atomRegion(a)
		inter, interExact := region.Intersect(ar)
		region, exact = inter, exact && arExact && interExact
	}
	ri.RowCol = col
	ri.RowRegion = region
	ri.RowExact = exact
	if ri.RowMode == RowRequire && region.ProvablyEmpty() {
		ri.CanNeverPass = true
	}
}

// rowModeOf classifies expect_rows: "0" (or "<=0") forbids matching rows;
// "N" / ">=N" with N >= 1 requires at least one.
func rowModeOf(expect string) RowMode {
	expect = strings.TrimSpace(expect)
	switch {
	case expect == "":
		return RowNone
	case expect == "0" || expect == "<=0":
		return RowForbid
	case strings.HasPrefix(expect, ">="):
		if n, err := strconv.Atoi(strings.TrimSpace(expect[2:])); err == nil && n >= 1 {
			return RowRequire
		}
	case strings.HasPrefix(expect, "<="):
		return RowNone
	default:
		if n, err := strconv.Atoi(expect); err == nil && n >= 1 {
			return RowRequire
		}
	}
	return RowNone
}

// atomRegion converts one column comparison into the set of column
// values satisfying it. Ordered comparisons use the numeric
// interpretation (the engine falls back to string order only for
// non-numeric cells; the linter's job is to flag constraints that are
// numerically contradictory).
func atomRegion(a schema.Atom) (*Set, bool) {
	val := func(i int) string {
		if i < len(a.Values) {
			return a.Values[i]
		}
		return ""
	}
	switch a.Op {
	case "=":
		v := val(0)
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return Numeric(interval{lo: f, hi: f}), true
		}
		return Finite(v), true
	case "!=":
		v := val(0)
		if _, err := strconv.ParseFloat(v, 64); err == nil {
			// Complement of a numeric point: every non-numeric string
			// plus every number but v. Approximate by the universe.
			return Any(), false
		}
		return Except(v), true
	case "<":
		return orderedRegion(val(0), func(f float64) *Set { return atMost(f, true) })
	case "<=":
		return orderedRegion(val(0), func(f float64) *Set { return atMost(f, false) })
	case ">":
		return orderedRegion(val(0), func(f float64) *Set { return atLeast(f, true) })
	case ">=":
		return orderedRegion(val(0), func(f float64) *Set { return atLeast(f, false) })
	case "IN":
		allPlain := true
		for _, v := range a.Values {
			if _, err := strconv.ParseFloat(v, 64); err == nil {
				allPlain = false
				break
			}
		}
		if allPlain {
			return Finite(a.Values...), true
		}
		var parts *Set = Empty()
		exact := true
		for _, v := range a.Values {
			r, rExact := atomRegion(schema.Atom{Column: a.Column, Op: "=", Values: []string{v}})
			u, uExact := parts.Union(r)
			parts, exact = u, exact && rExact && uExact
		}
		return parts, exact
	case "LIKE":
		pat := val(0)
		return Pred("LIKE "+strconv.Quote(pat), likeMatcher(pat)), false
	default:
		return Any(), false
	}
}

func orderedRegion(v string, build func(float64) *Set) (*Set, bool) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return Any(), false // string-ordered comparison: no useful region
	}
	return build(f), true
}

// likeMatcher compiles a SQL LIKE pattern (% and _ wildcards) into a
// membership test.
func likeMatcher(pattern string) func(string) bool {
	var b strings.Builder
	b.WriteString("^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return func(string) bool { return false }
	}
	return re.MatchString
}

// lowerPath derives pass facts for path rules: an exact permission that
// exceeds the rule's own max_permission mask is unsatisfiable.
func lowerPath(ri *RuleIR) {
	r := ri.Rule
	if r.Permission >= 0 && r.MaxPermission >= 0 && r.Permission&^r.MaxPermission != 0 {
		ri.CanNeverPass = true
	}
}

// matchDomain approximates the set of candidate values matching the
// expected list under the given spec (defaulted to exact,any like the
// engine).
func matchDomain(values []string, spec cvl.MatchSpec, caseInsensitive bool) (*Set, bool) {
	if spec.IsZero() {
		spec = cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}
	}
	var acc *Set
	accExact := true
	for _, v := range values {
		s, exact := oneValueSet(v, spec.Kind, caseInsensitive)
		if acc == nil {
			acc, accExact = s, exact
			continue
		}
		if spec.Quant == cvl.QuantAll {
			inter, interExact := acc.Intersect(s)
			acc, accExact = inter, accExact && exact && interExact
		} else {
			u, uExact := acc.Union(s)
			acc, accExact = u, accExact && exact && uExact
		}
	}
	if acc == nil {
		return Empty(), true // the engine matches nothing against an empty list
	}
	return acc, accExact
}

func oneValueSet(v string, kind cvl.MatchKind, caseInsensitive bool) (*Set, bool) {
	switch kind {
	case cvl.MatchExact:
		if caseInsensitive {
			want := strings.ToLower(v)
			return Pred("equal (case-insensitive) to "+strconv.Quote(v), func(x string) bool {
				return strings.ToLower(x) == want
			}), false
		}
		return Finite(v), true
	case cvl.MatchSubstr:
		want := v
		if caseInsensitive {
			want = strings.ToLower(v)
		}
		return Pred("containing "+strconv.Quote(v), func(x string) bool {
			if caseInsensitive {
				x = strings.ToLower(x)
			}
			return strings.Contains(x, want)
		}), false
	case cvl.MatchRegex:
		return regexSet(v, caseInsensitive)
	default:
		return Any(), false
	}
}

// typeSet renders a lens-declared value type as an abstract set
// over-approximating the key's legal values.
func typeSet(vt lens.ValueType) *Set {
	switch vt.Kind {
	case lens.KindEnum:
		return Finite(vt.Enum...)
	case lens.KindPort:
		return numRange(0, 65535)
	case lens.KindUint:
		return atLeast(0, false)
	case lens.KindInt:
		return Numeric(interval{loUnb: true, hiUnb: true})
	default:
		return Any()
	}
}

// ruleRejects replays the engine's checkValue for one concrete value,
// used to confirm overlap witnesses before reporting them. The second
// result is false when the matchers cannot be evaluated statically.
func ruleRejects(r *cvl.Rule, value string) (rejected, ok bool) {
	fails := func(vals []string, spec cvl.MatchSpec) (bool, bool) {
		if spec.IsZero() {
			spec = cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}
		}
		matched := 0
		for _, e := range vals {
			m, known := concreteMatch(value, e, spec.Kind, r.CaseInsensitive)
			if !known {
				return false, false
			}
			if m {
				if spec.Quant == cvl.QuantAny {
					return true, true
				}
				matched++
			} else if spec.Quant == cvl.QuantAll {
				return false, true
			}
		}
		return spec.Quant == cvl.QuantAll && matched == len(vals), true
	}
	if len(r.NonPreferredValue) > 0 {
		bad, known := fails(r.NonPreferredValue, r.NonPreferredMatch)
		if !known {
			return false, false
		}
		if bad {
			return true, true
		}
	}
	if len(r.PreferredValue) > 0 {
		good, known := fails(r.PreferredValue, r.PreferredMatch)
		if !known {
			return false, false
		}
		return !good, true
	}
	return false, true
}

func concreteMatch(value, expected string, kind cvl.MatchKind, caseInsensitive bool) (matched, known bool) {
	if caseInsensitive && kind != cvl.MatchRegex {
		value, expected = strings.ToLower(value), strings.ToLower(expected)
	}
	switch kind {
	case cvl.MatchExact:
		return value == expected, true
	case cvl.MatchSubstr:
		return strings.Contains(value, expected), true
	case cvl.MatchRegex:
		pat := expected
		if caseInsensitive {
			pat = "(?i)" + expected
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return false, false
		}
		return re.MatchString(value), true
	default:
		return false, false
	}
}

// describeOr renders a set description with a fallback for nil sets.
func describeOr(s *Set, fallback string) string {
	if s == nil {
		return fallback
	}
	return s.Describe()
}
