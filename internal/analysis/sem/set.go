// Package sem lowers resolved CVL rule sets into a normalized constraint
// IR — per-(entity, lens, key) constraint sets over abstract value
// domains — and runs a fixpoint checker over that IR to find rules that
// are semantically broken even though every one of them is syntactically
// valid: jointly unsatisfiable constraints on one key (CVL401), rules
// subsumed by stricter rules (CVL402), contradictions introduced across
// an inheritance chain (CVL403), composite expressions that are
// tautologies or contradictions (CVL404/CVL405), overlapping rules that
// disagree on severity (CVL406), and value matchers that can never match
// their key's lens-declared type (CVL407).
//
// The same IR is the input contract for the planned rule compiler
// (ROADMAP item 2): Lower performs the "rule-set load" half of rule
// evaluation — match-spec normalization, regex analysis, constraint
// extraction — once per rule set, independent of any entity.
package sem

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Set is an abstract set of configuration value strings. The zero value
// is not meaningful; use the constructors. Sets are immutable once built.
type Set struct {
	kind setKind
	// vals: kindFinite — the exact members, sorted, deduplicated.
	// kindExcept — the exact non-members.
	vals []string
	// ivs: kindNumeric — disjoint, sorted numeric intervals. The set
	// denotes every string whose numeric value lies in one of them.
	ivs []interval
	// test: kindPred — a membership oracle for single values; the set
	// itself cannot be enumerated or compared.
	test func(string) bool
	// desc is a short human rendering for diagnostics.
	desc string
}

type setKind int

const (
	kindAny setKind = iota // every string
	kindEmpty
	kindFinite
	kindExcept  // complement of a finite set
	kindNumeric // union of numeric intervals
	kindPred    // opaque, membership-testable only
)

// interval is a numeric interval with optionally open or unbounded ends.
type interval struct {
	lo, hi         float64 // bounds; ignored when the end is unbounded
	loUnb, hiUnb   bool
	loOpen, hiOpen bool
}

func (iv interval) contains(x float64) bool {
	if !iv.loUnb {
		if x < iv.lo || (iv.loOpen && x == iv.lo) {
			return false
		}
	}
	if !iv.hiUnb {
		if x > iv.hi || (iv.hiOpen && x == iv.hi) {
			return false
		}
	}
	return true
}

// empty reports whether the interval provably contains no number.
func (iv interval) empty() bool {
	if iv.loUnb || iv.hiUnb {
		return false
	}
	if iv.lo > iv.hi {
		return true
	}
	return iv.lo == iv.hi && (iv.loOpen || iv.hiOpen)
}

func (iv interval) String() string {
	lo, hi := "-inf", "+inf"
	lb, rb := "[", "]"
	if !iv.loUnb {
		lo = trimFloat(iv.lo)
		if iv.loOpen {
			lb = "("
		}
	} else {
		lb = "("
	}
	if !iv.hiUnb {
		hi = trimFloat(iv.hi)
		if iv.hiOpen {
			rb = ")"
		}
	} else {
		rb = ")"
	}
	return lb + lo + ", " + hi + rb
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// --- constructors ---

// Any returns the set of all strings.
func Any() *Set { return &Set{kind: kindAny, desc: "any value"} }

// Empty returns the empty set.
func Empty() *Set { return &Set{kind: kindEmpty, desc: "no value"} }

// Finite returns the exact set of the given values.
func Finite(values ...string) *Set {
	vals := dedupeSorted(values)
	if len(vals) == 0 {
		return Empty()
	}
	return &Set{kind: kindFinite, vals: vals, desc: renderVals(vals)}
}

// Except returns the complement of the given finite value set.
func Except(values ...string) *Set {
	vals := dedupeSorted(values)
	if len(vals) == 0 {
		return Any()
	}
	return &Set{kind: kindExcept, vals: vals, desc: "anything but " + renderVals(vals)}
}

// Numeric returns the set of numeric strings within the given intervals.
func Numeric(ivs ...interval) *Set {
	merged := mergeIntervals(ivs)
	if len(merged) == 0 {
		return Empty()
	}
	descs := make([]string, len(merged))
	for i, iv := range merged {
		descs[i] = iv.String()
	}
	return &Set{kind: kindNumeric, ivs: merged, desc: strings.Join(descs, " u ")}
}

// Pred returns an opaque set with a membership oracle. Only Contains is
// precise; set-level comparisons against other opaque sets are unknown.
func Pred(desc string, test func(string) bool) *Set {
	return &Set{kind: kindPred, test: test, desc: desc}
}

// atLeast / atMost / exactly build single-interval numeric sets.
func atLeast(x float64, open bool) *Set {
	return Numeric(interval{lo: x, loOpen: open, hiUnb: true})
}

func atMost(x float64, open bool) *Set {
	return Numeric(interval{hi: x, hiOpen: open, loUnb: true})
}

func numRange(lo, hi float64) *Set {
	return Numeric(interval{lo: lo, hi: hi})
}

func dedupeSorted(values []string) []string {
	out := append([]string(nil), values...)
	sort.Strings(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

func renderVals(vals []string) string {
	const maxShown = 4
	quoted := make([]string, 0, len(vals))
	for i, v := range vals {
		if i == maxShown {
			quoted = append(quoted, fmt.Sprintf("... (%d values)", len(vals)))
			break
		}
		quoted = append(quoted, strconv.Quote(v))
	}
	return "{" + strings.Join(quoted, ", ") + "}"
}

// mergeIntervals sorts and coalesces overlapping or touching intervals,
// dropping empty ones.
func mergeIntervals(ivs []interval) []interval {
	kept := make([]interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.empty() {
			kept = append(kept, iv)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.loUnb != b.loUnb {
			return a.loUnb
		}
		if a.loUnb {
			return false
		}
		if a.lo != b.lo {
			return a.lo < b.lo
		}
		return !a.loOpen && b.loOpen
	})
	var out []interval
	for _, iv := range kept {
		if len(out) == 0 {
			out = append(out, iv)
			continue
		}
		last := &out[len(out)-1]
		if intervalsTouch(*last, iv) {
			*last = hullOf(*last, iv)
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// intervalsTouch reports whether a (which starts no later than b) overlaps
// or is adjacent to b closely enough to merge. Adjacency at a shared
// closed endpoint merges; an open/open gap at one point does not.
func intervalsTouch(a, b interval) bool {
	if a.hiUnb || b.loUnb {
		return true
	}
	if a.hi > b.lo {
		return true
	}
	if a.hi == b.lo {
		return !(a.hiOpen && b.loOpen)
	}
	// Merge integer-adjacent closed intervals like [1,9] and [10,99]:
	// between consecutive integers no decimal configuration value is
	// expected, but numerically 9.5 would separate them, so stay exact
	// and do not merge.
	return false
}

func hullOf(a, b interval) interval {
	out := a
	if b.loUnb || (!a.loUnb && !b.loUnb && (b.lo < a.lo || (b.lo == a.lo && !b.loOpen))) {
		out.lo, out.loUnb, out.loOpen = b.lo, b.loUnb, b.loOpen
	}
	if b.hiUnb || (!a.hiUnb && !b.hiUnb && (b.hi > a.hi || (b.hi == a.hi && !b.hiOpen))) {
		out.hi, out.hiUnb, out.hiOpen = b.hi, b.hiUnb, b.hiOpen
	}
	return out
}

// --- queries ---

// Describe returns a short human rendering of the set.
func (s *Set) Describe() string { return s.desc }

// IsAny reports whether the set is the universe.
func (s *Set) IsAny() bool { return s.kind == kindAny }

// ProvablyEmpty reports whether the set is certainly empty. Opaque sets
// are never provably empty.
func (s *Set) ProvablyEmpty() bool {
	switch s.kind {
	case kindEmpty:
		return true
	case kindFinite:
		return len(s.vals) == 0
	case kindNumeric:
		return len(s.ivs) == 0
	default:
		return false
	}
}

// Contains reports whether v is a member. known is false when the set
// cannot decide (never happens for the current kinds, but callers must
// check it so new kinds stay safe).
func (s *Set) Contains(v string) (member, known bool) {
	switch s.kind {
	case kindAny:
		return true, true
	case kindEmpty:
		return false, true
	case kindFinite:
		return sortedContains(s.vals, v), true
	case kindExcept:
		return !sortedContains(s.vals, v), true
	case kindNumeric:
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return false, true
		}
		for _, iv := range s.ivs {
			if iv.contains(f) {
				return true, true
			}
		}
		return false, true
	case kindPred:
		return s.test(v), true
	default:
		return false, false
	}
}

func sortedContains(vals []string, v string) bool {
	i := sort.SearchStrings(vals, v)
	return i < len(vals) && vals[i] == v
}

// Intersect returns the intersection and whether the result is exact.
// When exact is false the returned set over-approximates the true
// intersection (it may contain extra elements, never fewer), so a
// non-empty inexact result proves nothing.
func (s *Set) Intersect(o *Set) (result *Set, exact bool) {
	// Normalize: handle the easy absorbing cases first.
	if s.kind == kindEmpty || o.kind == kindEmpty {
		return Empty(), true
	}
	if s.kind == kindAny {
		return o, true
	}
	if o.kind == kindAny {
		return s, true
	}
	// A finite side makes everything exact: filter by membership.
	if s.kind == kindFinite {
		return filterFinite(s.vals, o), true
	}
	if o.kind == kindFinite {
		return filterFinite(o.vals, s), true
	}
	switch {
	case s.kind == kindExcept && o.kind == kindExcept:
		union := append(append([]string(nil), s.vals...), o.vals...)
		return Except(union...), true
	case s.kind == kindNumeric && o.kind == kindNumeric:
		var out []interval
		for _, a := range s.ivs {
			for _, b := range o.ivs {
				if iv, ok := intersectIntervals(a, b); ok {
					out = append(out, iv)
				}
			}
		}
		return Numeric(out...), true
	case s.kind == kindExcept && o.kind == kindNumeric:
		return o, false // numeric minus finitely many points: still infinite-ish, approximate by the numeric side
	case s.kind == kindNumeric && o.kind == kindExcept:
		return s, false
	case s.kind == kindPred && o.kind == kindPred:
		// Membership stays precise (both oracles must accept); set-level
		// queries on the result remain unknown, so exactness is moot —
		// report inexact to keep disjointness proofs conservative.
		a, b := s, o
		return Pred(a.desc+" and "+b.desc, func(v string) bool {
			m1, k1 := a.Contains(v)
			m2, k2 := b.Contains(v)
			return k1 && k2 && m1 && m2
		}), false
	default:
		// One opaque side: approximate by the non-opaque one.
		if s.kind != kindPred {
			return s, false
		}
		return o, false
	}
}

// Union returns the union and whether it is exact. Inexact unions
// over-approximate membership only through their operands; the opaque
// fallback answers membership precisely but supports no set-level
// queries.
func (s *Set) Union(o *Set) (result *Set, exact bool) {
	switch {
	case s.kind == kindAny || o.kind == kindAny:
		return Any(), true
	case s.kind == kindEmpty:
		return o, true
	case o.kind == kindEmpty:
		return s, true
	case s.kind == kindFinite && o.kind == kindFinite:
		return Finite(append(append([]string(nil), s.vals...), o.vals...)...), true
	case s.kind == kindNumeric && o.kind == kindNumeric:
		return Numeric(append(append([]interval(nil), s.ivs...), o.ivs...)...), true
	case s.kind == kindExcept && o.kind == kindFinite:
		var kept []string
		for _, v := range s.vals {
			if !sortedContains(o.vals, v) {
				kept = append(kept, v)
			}
		}
		return Except(kept...), true
	case s.kind == kindFinite && o.kind == kindExcept:
		return o.Union(s)
	case s.kind == kindExcept && o.kind == kindExcept:
		var both []string
		for _, v := range s.vals {
			if sortedContains(o.vals, v) {
				both = append(both, v)
			}
		}
		return Except(both...), true
	default:
		a, b := s, o
		return Pred(a.desc+" or "+b.desc, func(v string) bool {
			m1, k1 := a.Contains(v)
			m2, k2 := b.Contains(v)
			return (k1 && m1) || (k2 && m2)
		}), false
	}
}

func filterFinite(vals []string, o *Set) *Set {
	var kept []string
	for _, v := range vals {
		if member, known := o.Contains(v); known && member {
			kept = append(kept, v)
		}
	}
	return Finite(kept...)
}

func intersectIntervals(a, b interval) (interval, bool) {
	out := a
	if !b.loUnb && (out.loUnb || b.lo > out.lo || (b.lo == out.lo && b.loOpen)) {
		out.lo, out.loUnb, out.loOpen = b.lo, false, b.loOpen || (b.lo == a.lo && a.loOpen)
	}
	if !b.hiUnb && (out.hiUnb || b.hi < out.hi || (b.hi == out.hi && b.hiOpen)) {
		out.hi, out.hiUnb, out.hiOpen = b.hi, false, b.hiOpen || (b.hi == a.hi && a.hiOpen)
	}
	if out.empty() {
		return interval{}, false
	}
	return out, true
}

// ProvablyDisjoint reports whether the two sets certainly share no
// element.
func (s *Set) ProvablyDisjoint(o *Set) bool {
	inter, exact := s.Intersect(o)
	return exact && inter.ProvablyEmpty()
}

// SubsetOf reports whether the set is provably a subset of o. False
// means "not proven", not "disproven".
func (s *Set) SubsetOf(o *Set) bool {
	if s.kind == kindEmpty || o.kind == kindAny {
		return true
	}
	switch s.kind {
	case kindFinite:
		for _, v := range s.vals {
			member, known := o.Contains(v)
			if !known || !member {
				return false
			}
		}
		return true
	case kindNumeric:
		if o.kind != kindNumeric {
			return false
		}
		for _, a := range s.ivs {
			if !intervalCovered(a, o.ivs) {
				return false
			}
		}
		return true
	case kindExcept:
		// except(A) subset of except(B) iff B subset of A.
		if o.kind != kindExcept {
			return false
		}
		for _, v := range o.vals {
			if !sortedContains(s.vals, v) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// intervalCovered reports whether a is contained in the union of cover.
// The cover is disjoint and sorted, so a must fit inside one interval
// (merging has already coalesced touching neighbors).
func intervalCovered(a interval, cover []interval) bool {
	for _, c := range cover {
		loOK := c.loUnb || (!a.loUnb && (a.lo > c.lo || (a.lo == c.lo && (a.loOpen || !c.loOpen))))
		hiOK := c.hiUnb || (!a.hiUnb && (a.hi < c.hi || (a.hi == c.hi && (a.hiOpen || !c.hiOpen))))
		if loOK && hiOK {
			return true
		}
	}
	return false
}

// Witness returns a concrete value in the intersection of the two sets,
// when one can be produced. Used to make overlap findings concrete.
func (s *Set) Witness(o *Set) (string, bool) {
	if s.kind == kindFinite {
		for _, v := range s.vals {
			if member, known := o.Contains(v); known && member {
				return v, true
			}
		}
		return "", false
	}
	if o.kind == kindFinite {
		return o.Witness(s)
	}
	if s.kind == kindNumeric && o.kind == kindNumeric {
		inter, _ := s.Intersect(o)
		if inter.kind == kindNumeric && len(inter.ivs) > 0 {
			return samplePoint(inter.ivs[0])
		}
	}
	return "", false
}

// samplePoint picks an integer representative from a non-empty interval
// when possible.
func samplePoint(iv interval) (string, bool) {
	switch {
	case !iv.loUnb:
		x := math.Ceil(iv.lo)
		if iv.loOpen && x == iv.lo {
			x++
		}
		if !iv.hiUnb && (x > iv.hi || (x == iv.hi && iv.hiOpen)) {
			return "", false
		}
		return trimFloat(x), true
	case !iv.hiUnb:
		x := math.Floor(iv.hi)
		if iv.hiOpen && x == iv.hi {
			x--
		}
		return trimFloat(x), true
	default:
		return "0", true
	}
}

// Complement returns the complement and whether it is exact. Inexact
// complements over-approximate (they may contain extra elements), which
// keeps emptiness proofs sound.
func (s *Set) Complement() (result *Set, exact bool) {
	switch s.kind {
	case kindAny:
		return Empty(), true
	case kindEmpty:
		return Any(), true
	case kindFinite:
		return Except(s.vals...), true
	case kindExcept:
		return Finite(s.vals...), true
	default:
		// Complement of a numeric or opaque set includes every
		// non-numeric string; approximate by the universe.
		return Any(), false
	}
}
