package sem

import (
	"strings"
	"testing"

	"configvalidator/internal/cvl"
)

// --- abstract domain ---

func TestFiniteIntersect(t *testing.T) {
	a := Finite("1", "2", "3")
	b := Finite("2", "3", "4")
	inter, exact := a.Intersect(b)
	if !exact {
		t.Fatalf("finite intersect should be exact")
	}
	if got := inter.Describe(); !strings.Contains(got, `"2"`) || !strings.Contains(got, `"3"`) {
		t.Fatalf("unexpected intersection %s", got)
	}
	if member, _ := inter.Contains("1"); member {
		t.Fatalf("1 should not survive the intersection")
	}
}

func TestNumericOps(t *testing.T) {
	ports := numRange(0, 65535)
	high := atLeast(1024, false)
	inter, exact := ports.Intersect(high)
	if !exact || inter.ProvablyEmpty() {
		t.Fatalf("intersect [0,65535] with [1024,inf) should be exact and non-empty")
	}
	if member, _ := inter.Contains("22"); member {
		t.Fatalf("22 is below 1024")
	}
	if member, _ := inter.Contains("8080"); !member {
		t.Fatalf("8080 should be a member")
	}
	if !Finite("22").ProvablyDisjoint(high) {
		t.Fatalf("{22} should be provably disjoint from [1024,inf)")
	}
	if !numRange(10, 20).SubsetOf(numRange(0, 100)) {
		t.Fatalf("[10,20] should be a subset of [0,100]")
	}
	if numRange(10, 200).SubsetOf(numRange(0, 100)) {
		t.Fatalf("[10,200] is not a subset of [0,100]")
	}
}

func TestExceptAndComplement(t *testing.T) {
	s := Finite("a", "b")
	comp, exact := s.Complement()
	if !exact {
		t.Fatalf("complement of a finite set is exact")
	}
	if member, _ := comp.Contains("a"); member {
		t.Fatalf("complement should exclude a")
	}
	if member, _ := comp.Contains("z"); !member {
		t.Fatalf("complement should include z")
	}
	inter, exact := comp.Intersect(Finite("a", "c"))
	if !exact {
		t.Fatalf("except/finite intersect is exact")
	}
	if member, _ := inter.Contains("a"); member {
		t.Fatalf("a must not survive")
	}
	if member, _ := inter.Contains("c"); !member {
		t.Fatalf("c must survive")
	}
}

func TestUnion(t *testing.T) {
	u, exact := Finite("a").Union(Finite("b"))
	if !exact {
		t.Fatalf("finite union is exact")
	}
	for _, v := range []string{"a", "b"} {
		if member, _ := u.Contains(v); !member {
			t.Fatalf("%s missing from union", v)
		}
	}
	n, _ := numRange(1, 5).Union(numRange(10, 20))
	if member, _ := n.Contains("7"); member {
		t.Fatalf("7 is in neither interval")
	}
}

func TestWitness(t *testing.T) {
	w, ok := Finite("x", "y").Witness(Except("x"))
	if !ok || w != "y" {
		t.Fatalf("witness = %q, %v; want y", w, ok)
	}
	w, ok = numRange(10, 20).Witness(numRange(15, 30))
	if !ok {
		t.Fatalf("expected a numeric witness")
	}
	if member, _ := numRange(15, 20).Contains(w); !member {
		t.Fatalf("witness %q outside the overlap", w)
	}
}

// --- regex approximation ---

func TestRegexSetFinite(t *testing.T) {
	s, exact := regexSet("^[1-4]$", false)
	if !exact {
		t.Fatalf("^[1-4]$ should enumerate exactly")
	}
	for _, v := range []string{"1", "4"} {
		if member, _ := s.Contains(v); !member {
			t.Fatalf("%s should match", v)
		}
	}
	if member, _ := s.Contains("5"); member {
		t.Fatalf("5 must not match")
	}
}

func TestRegexSetBoundedAlternation(t *testing.T) {
	// The CIS idiom for 1..300.
	s, exact := regexSet("^([1-9]|[1-9][0-9]|[1-2][0-9][0-9]|300)$", false)
	if !exact {
		t.Fatalf("bounded alternation should enumerate exactly")
	}
	for _, v := range []string{"1", "99", "300"} {
		if member, _ := s.Contains(v); !member {
			t.Fatalf("%s should match", v)
		}
	}
	for _, v := range []string{"0", "301"} {
		if member, _ := s.Contains(v); member {
			t.Fatalf("%s must not match", v)
		}
	}
}

// portHighRegex matches exactly the integers 1024..65535.
const portHighRegex = `^(102[4-9]|10[3-9][0-9]|1[1-9][0-9]{2}|[2-9][0-9]{3}|[1-5][0-9]{4}|6[0-4][0-9]{3}|65[0-4][0-9]{2}|655[0-2][0-9]|6553[0-5])$`

func TestRegexSetDigitIntervals(t *testing.T) {
	s, _ := regexSet(portHighRegex, false)
	if s.ProvablyEmpty() {
		t.Fatalf("port regex should not be empty")
	}
	if member, _ := s.Contains("22"); member {
		t.Fatalf("22 is below 1024")
	}
	if member, _ := s.Contains("1024"); !member {
		t.Fatalf("1024 should be a member")
	}
	if member, _ := s.Contains("65535"); !member {
		t.Fatalf("65535 should be a member")
	}
	if !Finite("22").ProvablyDisjoint(s) {
		t.Fatalf("{22} should be provably disjoint from the port range")
	}
}

func TestRegexSetUnanchoredFallsBack(t *testing.T) {
	s, exact := regexSet("ssl", false)
	if exact {
		t.Fatalf("unanchored pattern is not exact")
	}
	if member, _ := s.Contains("openssl-1.0"); !member {
		t.Fatalf("membership should stay precise on the fallback")
	}
	if member, _ := s.Contains("tls"); member {
		t.Fatalf("tls does not contain ssl")
	}
}

// --- lowering ---

func treeRule(name string, pref, nonpref []string) *cvl.Rule {
	return &cvl.Rule{Type: cvl.TypeTree, Name: name, PreferredValue: pref, NonPreferredValue: nonpref}
}

func TestLowerPassViol(t *testing.T) {
	ri := LowerRule(treeRule("Port", []string{"22"}, nil))
	if ri.Pass == nil || ri.Viol == nil {
		t.Fatalf("expected pass and viol sets")
	}
	if member, _ := ri.Pass.Contains("22"); !member {
		t.Fatalf("22 should pass")
	}
	if member, _ := ri.Viol.Contains("22"); member {
		t.Fatalf("22 should not violate")
	}
	if member, _ := ri.Viol.Contains("23"); !member {
		t.Fatalf("23 should violate")
	}
}

func TestLowerUnsat(t *testing.T) {
	ri := LowerRule(treeRule("X", []string{"a"}, []string{"a"}))
	if !ri.Pass.ProvablyEmpty() {
		t.Fatalf("preferring and rejecting the same value is unsatisfiable")
	}
	if !ri.CanNeverPass {
		t.Fatalf("CanNeverPass should be set")
	}
}

func TestLowerSchemaRowRegion(t *testing.T) {
	r := &cvl.Rule{
		Type: cvl.TypeSchema, Name: "no_low_ports",
		QueryConstraints:      "port < ?",
		QueryConstraintsValue: []string{"1024"},
		ExpectRows:            "0",
	}
	ri := LowerRule(r)
	if ri.RowMode != RowForbid || ri.RowCol != "port" {
		t.Fatalf("unexpected row lowering: mode=%v col=%q", ri.RowMode, ri.RowCol)
	}
	if member, _ := ri.RowRegion.Contains("80"); !member {
		t.Fatalf("80 should be inside the forbidden region")
	}
	if member, _ := ri.RowRegion.Contains("8080"); member {
		t.Fatalf("8080 is outside the forbidden region")
	}
}

func TestLowerPathConflict(t *testing.T) {
	r := &cvl.Rule{Type: cvl.TypePath, Name: "/etc/shadow", Permission: 0o644, MaxPermission: 0o600}
	if !LowerRule(r).CanNeverPass {
		t.Fatalf("0644 exceeds max 0600: rule can never pass")
	}
	r2 := &cvl.Rule{Type: cvl.TypePath, Name: "/etc/passwd", Permission: 0o600, MaxPermission: 0o644}
	if LowerRule(r2).CanNeverPass {
		t.Fatalf("0600 within max 0644 is satisfiable")
	}
}

// --- checker ---

func findingCodes(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Code)
	}
	return out
}

func hasCode(fs []Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}

func TestCheckUnsatSingle(t *testing.T) {
	ir := Lower("unit.yaml", []*cvl.Rule{treeRule("X", []string{"a"}, []string{"a"})})
	fs := Check([]*IR{ir}, nil)
	if !hasCode(fs, CodeUnsat) {
		t.Fatalf("want CVL401, got %v", findingCodes(fs))
	}
}

func TestCheckSubsumed(t *testing.T) {
	a := &cvl.Rule{Type: cvl.TypeScript, Name: "wide", ScriptFeature: "selinux",
		NonPreferredValue: []string{"disabled", "permissive"}}
	b := &cvl.Rule{Type: cvl.TypeScript, Name: "narrow", ScriptFeature: "selinux",
		NonPreferredValue: []string{"disabled"}}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{a, b})}, nil)
	if !hasCode(fs, CodeSubsumed) {
		t.Fatalf("want CVL402, got %v", findingCodes(fs))
	}
	for _, f := range fs {
		if f.Code == CodeSubsumed && f.Rule != b {
			t.Fatalf("the narrow rule should be the subsumed one")
		}
	}
}

func TestCheckInheritConflict(t *testing.T) {
	parent := &cvl.Rule{Type: cvl.TypeTree, Name: "Port", Source: "base.yaml",
		PreferredValue: []string{portHighRegex}, PreferredMatch: cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAny}}
	child := &cvl.Rule{Type: cvl.TypeTree, Name: "Port", Source: "child.yaml", Override: true,
		PreferredValue: []string{"22"}}
	fs := CheckReplacement(parent, child)
	if !hasCode(fs, CodeInheritConflict) {
		t.Fatalf("want CVL403, got %v", findingCodes(fs))
	}
	if fs[0].Rule != child || len(fs[0].Related) != 1 || fs[0].Related[0].Rule != parent {
		t.Fatalf("finding should anchor on the child and relate the parent")
	}
	// Narrowing (subset) must stay silent.
	narrowed := &cvl.Rule{Type: cvl.TypeTree, Name: "Port", Source: "child.yaml", Override: true,
		PreferredValue: []string{"2222"}}
	if fs := CheckReplacement(parent, narrowed); len(fs) != 0 {
		t.Fatalf("narrowing override is benign, got %v", findingCodes(fs))
	}
}

func mustComposite(t *testing.T, src string) *cvl.CompositeExpr {
	t.Helper()
	e, err := cvl.ParseComposite(src)
	if err != nil {
		t.Fatalf("parse composite %q: %v", src, err)
	}
	return e
}

func TestCheckCompositeTautologyContradiction(t *testing.T) {
	taut := &cvl.Rule{Type: cvl.TypeComposite, Name: "always", Source: "u",
		CompositeExpr: mustComposite(t, "db.ssl || !db.ssl")}
	contra := &cvl.Rule{Type: cvl.TypeComposite, Name: "never", Source: "u",
		CompositeExpr: mustComposite(t, "db.ssl && !db.ssl")}
	open := &cvl.Rule{Type: cvl.TypeComposite, Name: "open", Source: "u",
		CompositeExpr: mustComposite(t, "db.ssl && web.tls")}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{taut, contra, open})}, nil)
	if !hasCode(fs, CodeCompositeTautology) || !hasCode(fs, CodeCompositeContradiction) {
		t.Fatalf("want CVL404 and CVL405, got %v", findingCodes(fs))
	}
	for _, f := range fs {
		if f.Rule == open {
			t.Fatalf("satisfiable composite must not be flagged")
		}
	}
}

func TestCheckCompositeValueDomains(t *testing.T) {
	// Comparing one key against two distinct literals conjunctively is a
	// contradiction; against the same literal disjunctively with != it is
	// a tautology.
	contra := &cvl.Rule{Type: cvl.TypeComposite, Name: "two_values", Source: "u",
		CompositeExpr: mustComposite(t, `db.mode.CONFIGPATH=[main].VALUE == "a" && db.mode.CONFIGPATH=[main].VALUE == "b"`)}
	taut := &cvl.Rule{Type: cvl.TypeComposite, Name: "eq_or_ne", Source: "u",
		CompositeExpr: mustComposite(t, `db.mode.CONFIGPATH=[main].VALUE == "a" || db.mode.CONFIGPATH=[main].VALUE != "a"`)}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{contra, taut})}, nil)
	if !hasCode(fs, CodeCompositeContradiction) {
		t.Fatalf("want CVL405, got %v", findingCodes(fs))
	}
	if !hasCode(fs, CodeCompositeTautology) {
		t.Fatalf("want CVL404, got %v", findingCodes(fs))
	}
}

func TestCheckCompositeConstantFolding(t *testing.T) {
	member := treeRule("ssl", []string{"on"}, []string{"on"}) // can never pass
	comp := &cvl.Rule{Type: cvl.TypeComposite, Name: "needs_ssl", Source: "u",
		CompositeExpr: mustComposite(t, "db.ssl && db.other")}
	ir := Lower("u", []*cvl.Rule{member, comp})
	fs := Check([]*IR{ir}, []Entity{{Name: "db", Units: []string{"u"}}})
	if !hasCode(fs, CodeCompositeContradiction) {
		t.Fatalf("member rule can never pass, so the conjunction is constant false; got %v", findingCodes(fs))
	}
	var related bool
	for _, f := range fs {
		if f.Code == CodeCompositeContradiction {
			for _, rel := range f.Related {
				if rel.Rule == member {
					related = true
				}
			}
		}
	}
	if !related {
		t.Fatalf("the folded member rule should be listed as related")
	}
}

func TestCheckSeverityConflict(t *testing.T) {
	a := &cvl.Rule{Type: cvl.TypeScript, Name: "hard", ScriptFeature: "fips", Severity: "high",
		NonPreferredValue: []string{"off", "0"}}
	b := &cvl.Rule{Type: cvl.TypeScript, Name: "soft", ScriptFeature: "fips", Severity: "low",
		NonPreferredValue: []string{"off"}}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{a, b})}, nil)
	if !hasCode(fs, CodeSeverityConflict) {
		t.Fatalf("want CVL406, got %v", findingCodes(fs))
	}
}

func TestCheckTypeMismatch(t *testing.T) {
	r := &cvl.Rule{Type: cvl.TypeTree, Name: "Port", FileContext: []string{"sshd_config"},
		PreferredValue: []string{"yes"}}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{r})}, nil)
	if !hasCode(fs, CodeTypeMismatch) {
		t.Fatalf(`preferring "yes" for a port-typed key should raise CVL407, got %v`, findingCodes(fs))
	}
	ok := &cvl.Rule{Type: cvl.TypeTree, Name: "Port", FileContext: []string{"sshd_config"},
		PreferredValue: []string{"22"}}
	if fs := Check([]*IR{Lower("u", []*cvl.Rule{ok})}, nil); hasCode(fs, CodeTypeMismatch) {
		t.Fatalf("22 is a valid port; no CVL407 expected")
	}
}

func TestCheckRowRegionConflict(t *testing.T) {
	need := &cvl.Rule{Type: cvl.TypeSchema, Name: "want_low", Source: "u",
		QueryConstraints: "port < ?", QueryConstraintsValue: []string{"1024"}, ExpectRows: ">=1"}
	ban := &cvl.Rule{Type: cvl.TypeSchema, Name: "ban_low", Source: "u",
		QueryConstraints: "port <= ?", QueryConstraintsValue: []string{"2048"}, ExpectRows: "0"}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{need, ban})}, nil)
	if !hasCode(fs, CodeUnsat) {
		t.Fatalf("required region inside forbidden region: want CVL401, got %v", findingCodes(fs))
	}
}

func TestCheckSchemaJointUnsat(t *testing.T) {
	mk := func(name, val string) *cvl.Rule {
		return &cvl.Rule{Type: cvl.TypeSchema, Name: name, Source: "u",
			QueryConstraints: "dir = ?", QueryConstraintsValue: []string{"/tmp"},
			QueryColumns: []string{"opts"}, ExpectRows: ">=1",
			PreferredValue: []string{val}}
	}
	fs := Check([]*IR{Lower("u", []*cvl.Rule{mk("a", "nodev"), mk("b", "nosuid")})}, nil)
	if !hasCode(fs, CodeUnsat) {
		t.Fatalf("two exact preferred values on one slot: want CVL401, got %v", findingCodes(fs))
	}
}

// --- benchmarks (gated in make bench-check) ---

func benchRules() []*cvl.Rule {
	var rules []*cvl.Rule
	for i := 0; i < 40; i++ {
		rules = append(rules,
			&cvl.Rule{Type: cvl.TypeTree, Name: "KeyA" + string(rune('a'+i%26)),
				PreferredValue: []string{"^([1-9]|[1-9][0-9]|[1-2][0-9][0-9]|300)$"},
				PreferredMatch: cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAny}},
			&cvl.Rule{Type: cvl.TypeSchema, Name: "row" + string(rune('a'+i%26)),
				QueryConstraints: "port >= ?", QueryConstraintsValue: []string{"1024"}, ExpectRows: "0"},
		)
	}
	return rules
}

func BenchmarkSemanticLower(b *testing.B) {
	rules := benchRules()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lower("bench.yaml", rules)
	}
}

func BenchmarkSemanticCheck(b *testing.B) {
	ir := Lower("bench.yaml", benchRules())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Check([]*IR{ir}, nil)
	}
}
