package analysis

import (
	"strings"
	"testing"
)

// cleanRule is a fully decorated tree rule that produces no diagnostics.
const cleanRule = `config_name: ssl_protocols
description: "TLS versions."
tags: ["#cis"]
config_path: [""]
preferred_value: ["TLSv1.2"]
preferred_value_match: exact,any
matched_description: "ok"
not_matched_preferred_value_description: "bad"
not_present_description: "missing"
`

func analyzeOne(t *testing.T, content string) *Result {
	t.Helper()
	p := NewProject()
	p.AddRuleFile("f.yaml", []byte(content))
	return Analyze(p, Options{})
}

func codes(res *Result) []string {
	out := make([]string, 0, len(res.Diagnostics))
	for _, d := range res.Diagnostics {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(res *Result, code string) bool {
	for _, d := range res.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

func findCode(t *testing.T, res *Result, code string) Diagnostic {
	t.Helper()
	for _, d := range res.Diagnostics {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in %v", code, res.Diagnostics)
	return Diagnostic{}
}

func TestCleanFileNoDiagnostics(t *testing.T) {
	res := analyzeOne(t, cleanRule)
	if len(res.Diagnostics) != 0 {
		t.Errorf("clean file diagnostics: %v", res.Diagnostics)
	}
	if res.FilesChecked != 1 {
		t.Errorf("files checked = %d", res.FilesChecked)
	}
}

// TestEndToEndProject is the acceptance pin: a fixture project with an
// inheritance cycle, an undefined composite reference, and a shadowed
// rule yields exactly the expected diagnostic codes at the expected
// file:line positions.
func TestEndToEndProject(t *testing.T) {
	p := NewProject()
	p.AddRuleFile("base.yaml", []byte(cleanRule))
	p.AddRuleFile("child.yaml", []byte(`parent_cvl_file: base.yaml
---
config_name: ssl_protocols
description: "Stricter TLS versions."
tags: ["#cis"]
config_path: [""]
preferred_value: ["TLSv1.3"]
preferred_value_match: exact,any
matched_description: "ok"
not_matched_preferred_value_description: "bad"
not_present_description: "missing"
---
composite_rule_name: agg
composite_rule_description: "Aggregate check."
tags: ["#cis"]
matched_description: "ok"
composite_rule: nosuch.rule && web.ssl_protocols
`))
	p.AddRuleFile("cyc1.yaml", []byte(`parent_cvl_file: cyc2.yaml
---
config_name: a
description: "d"
tags: ["#cis"]
matched_description: "ok"
not_present_description: "missing"
`))
	p.AddRuleFile("cyc2.yaml", []byte("parent_cvl_file: cyc1.yaml\n"))
	p.AddManifest("manifest.yaml", []byte(`web:
  enabled: True
  cvl_file: child.yaml
cyc:
  enabled: True
  cvl_file: cyc1.yaml
`))
	res := Analyze(p, Options{})
	want := []struct {
		code string
		file string
		line int
	}{
		{CodeShadowed, "child.yaml", 3},
		{CodeUnknownEntity, "child.yaml", 17},
		{CodeCycle, "cyc2.yaml", 1},
	}
	if len(res.Diagnostics) != len(want) {
		t.Fatalf("diagnostics = %v, want exactly %d: %v", res.Diagnostics, len(want), want)
	}
	for i, w := range want {
		d := res.Diagnostics[i]
		if d.Code != w.code || d.File != w.file || d.Line != w.line {
			t.Errorf("diag %d = %s:%d %s (%s), want %s:%d %s", i, d.File, d.Line, d.Code, d.Msg, w.file, w.line, w.code)
		}
	}
	// The shadow diagnostic names the parent file; the composite one
	// suggests the closest entity.
	if d := findCode(t, res, CodeShadowed); !strings.Contains(d.Msg, "base.yaml") {
		t.Errorf("shadow msg = %q", d.Msg)
	}
	if d := findCode(t, res, CodeUnknownEntity); !strings.Contains(d.Msg, "nosuch") {
		t.Errorf("unknown entity msg = %q", d.Msg)
	}
}

func TestSyntaxErrorPositioned(t *testing.T) {
	res := analyzeOne(t, "config_name: x\n  stray: indent\n")
	d := findCode(t, res, CodeSyntax)
	if d.Line != 2 {
		t.Errorf("syntax pos = %d:%d", d.Line, d.Col)
	}
}

func TestUnknownKeywordPositionAndSuggestion(t *testing.T) {
	res := analyzeOne(t, "config_name: x\nconfig_pth: [a]\n")
	d := findCode(t, res, CodeUnknownKeyword)
	if d.Line != 2 || d.Col != 1 {
		t.Errorf("unknown keyword pos = %d:%d", d.Line, d.Col)
	}
	if !strings.Contains(d.Msg, `"config_path"`) {
		t.Errorf("no did-you-mean: %q", d.Msg)
	}
	if d.Rule != "x" {
		t.Errorf("rule attribution = %q", d.Rule)
	}
}

func TestWrongGroupKeyword(t *testing.T) {
	res := analyzeOne(t, "config_name: x\nquery_constraints: q\n")
	d := findCode(t, res, CodeWrongGroup)
	if d.Line != 2 {
		t.Errorf("wrong group pos = %d:%d", d.Line, d.Col)
	}
	if !strings.Contains(d.Msg, "schema") {
		t.Errorf("msg = %q", d.Msg)
	}
}

func TestInvalidRuleAttributedToKeyword(t *testing.T) {
	res := analyzeOne(t, "config_name: x\noccurrence: sometimes\n")
	d := findCode(t, res, CodeInvalidRule)
	if d.Line != 2 {
		t.Errorf("invalid rule pos = %d:%d (want the occurrence key)", d.Line, d.Col)
	}
}

func TestDuplicateRuleInFile(t *testing.T) {
	content := cleanRule + "---\n" + cleanRule
	res := analyzeOne(t, content)
	d := findCode(t, res, CodeDuplicateRule)
	if d.Line != 11 {
		t.Errorf("duplicate pos = %d", d.Line)
	}
	if !strings.Contains(d.Msg, "line 1") {
		t.Errorf("msg = %q", d.Msg)
	}
}

func TestParentDirectiveErrors(t *testing.T) {
	res := analyzeOne(t, "parent_cvl_file: [a]\n")
	if !hasCode(res, CodeParentNotString) {
		t.Errorf("non-string parent: %v", codes(res))
	}
	p := NewProject()
	p.AddRuleFile("f.yaml", []byte("parent_cvl_file: a.yaml\n---\nparent_cvl_file: b.yaml\n"))
	p.AddRuleFile("a.yaml", []byte(cleanRule))
	res = Analyze(p, Options{})
	d := findCode(t, res, CodeDuplicateParent)
	if d.Line != 3 {
		t.Errorf("duplicate parent pos = %d", d.Line)
	}
}

func TestMissingParent(t *testing.T) {
	res := analyzeOne(t, "parent_cvl_file: gone.yaml\n")
	d := findCode(t, res, CodeMissingParent)
	if d.Severity != SevError || d.Line != 1 {
		t.Errorf("missing parent = %+v", d)
	}
	// ExternalParents downgrades to warning (single-file lint mode).
	res = AnalyzeFile("f.yaml", []byte("parent_cvl_file: gone.yaml\n"))
	d = findCode(t, res, CodeMissingParent)
	if d.Severity != SevWarning {
		t.Errorf("external parent severity = %v", d.Severity)
	}
	if res.HasErrors() {
		t.Errorf("single-file parent ref must not be an error: %v", res.Diagnostics)
	}
}

func TestSelfCycle(t *testing.T) {
	p := NewProject()
	p.AddRuleFile("self.yaml", []byte("parent_cvl_file: self.yaml\n"))
	res := Analyze(p, Options{})
	if !hasCode(res, CodeCycle) {
		t.Errorf("self cycle: %v", codes(res))
	}
}

func TestDeadOverrideAndDeadDisabled(t *testing.T) {
	p := NewProject()
	p.AddRuleFile("base.yaml", []byte(cleanRule))
	child := `parent_cvl_file: base.yaml
---
config_name: no_such_parent_rule
description: "d"
tags: ["#cis"]
override: True
matched_description: "ok"
not_present_description: "m"
---
config_name: also_not_in_parent
disabled: True
`
	p.AddRuleFile("child.yaml", []byte(child))
	res := Analyze(p, Options{})
	if d := findCode(t, res, CodeDeadOverride); d.Line != 3 {
		t.Errorf("dead override pos = %d", d.Line)
	}
	if d := findCode(t, res, CodeDeadDisabled); d.Line != 10 {
		t.Errorf("dead disabled pos = %d", d.Line)
	}
}

func TestOverrideSuppressesShadowWarning(t *testing.T) {
	p := NewProject()
	p.AddRuleFile("base.yaml", []byte(cleanRule))
	child := "parent_cvl_file: base.yaml\n---\n" +
		strings.Replace(cleanRule, "config_path: [\"\"]\n", "config_path: [\"\"]\noverride: True\n", 1)
	p.AddRuleFile("child.yaml", []byte(child))
	res := Analyze(p, Options{})
	if hasCode(res, CodeShadowed) {
		t.Errorf("override still reported as shadow: %v", res.Diagnostics)
	}
}

func TestDisableInheritedRuleClean(t *testing.T) {
	p := NewProject()
	p.AddRuleFile("base.yaml", []byte(cleanRule))
	p.AddRuleFile("child.yaml", []byte("parent_cvl_file: base.yaml\n---\nconfig_name: ssl_protocols\ndisabled: True\n"))
	res := Analyze(p, Options{})
	if len(res.Diagnostics) != 0 {
		t.Errorf("legit disable flagged: %v", res.Diagnostics)
	}
}

func TestBadRegex(t *testing.T) {
	content := strings.Replace(cleanRule,
		"preferred_value: [\"TLSv1.2\"]\npreferred_value_match: exact,any\n",
		"preferred_value: [\"(unclosed\"]\npreferred_value_match: regex,any\n", 1)
	res := analyzeOne(t, content)
	d := findCode(t, res, CodeBadRegex)
	if d.Line != 5 || d.Severity != SevError {
		t.Errorf("bad regex = %+v", d)
	}
}

func TestContradictoryValues(t *testing.T) {
	content := strings.Replace(cleanRule, "preferred_value: [\"TLSv1.2\"]\n",
		"preferred_value: [\"TLSv1.2\"]\nnon_preferred_value: [\"TLSv1.2\"]\nnon_preferred_value_match: exact,any\n", 1)
	res := analyzeOne(t, content)
	if d := findCode(t, res, CodeContradiction); d.Severity != SevError {
		t.Errorf("contradiction = %+v", d)
	}
	// Regex non-preferred values are not compared literally.
	content = strings.Replace(cleanRule, "preferred_value: [\"TLSv1.2\"]\n",
		"preferred_value: [\"TLSv1.2\"]\nnon_preferred_value: [\"TLSv1.2\"]\nnon_preferred_value_match: regex,any\n", 1)
	res = analyzeOne(t, content)
	if hasCode(res, CodeContradiction) {
		t.Errorf("regex matcher misreported as contradiction: %v", res.Diagnostics)
	}
}

func TestMatchSpecWithoutValues(t *testing.T) {
	res := analyzeOne(t, `config_name: x
description: "d"
tags: ["#cis"]
matched_description: "ok"
not_present_description: "m"
non_preferred_value_match: exact,any
`)
	d := findCode(t, res, CodeMatchWithoutVal)
	if d.Line != 6 {
		t.Errorf("match-without-values pos = %d", d.Line)
	}
}

func TestRelativePathRule(t *testing.T) {
	res := analyzeOne(t, "path_name: etc/passwd\npath_description: \"d\"\ntags: [\"#cis\"]\nexists: True\n")
	if !hasCode(res, CodeRelativePath) {
		t.Errorf("relative path not flagged: %v", codes(res))
	}
}

func TestStyleWarningsMirrorLint(t *testing.T) {
	res := analyzeOne(t, "config_name: bare\n")
	for _, code := range []string{CodeMissingDescription, CodeMissingTags, CodeMissingOutputDesc} {
		if !hasCode(res, code) {
			t.Errorf("missing %s in %v", code, codes(res))
		}
	}
	if res.HasErrors() {
		t.Errorf("style findings must be warnings: %v", res.Diagnostics)
	}
	res = analyzeOne(t, strings.Replace(cleanRule, "preferred_value_match: exact,any\n", "", 1))
	if !hasCode(res, CodeImplicitMatch) {
		t.Errorf("implicit match not flagged: %v", codes(res))
	}
}

func TestManifestChecks(t *testing.T) {
	p := NewProject()
	p.AddManifest("manifest.yaml", []byte(`web:
  enabled: True
  cvl_fle: web.yaml
db:
  enabled: True
`))
	p.AddRuleFile("web.yaml", []byte(cleanRule))
	res := Analyze(p, Options{})
	var sawUnknownKey, sawMissingCVL bool
	for _, d := range res.Diagnostics {
		if d.Code == CodeBadManifest {
			if strings.Contains(d.Msg, "cvl_fle") {
				sawUnknownKey = true
				if !strings.Contains(d.Msg, `"cvl_file"`) {
					t.Errorf("no suggestion: %q", d.Msg)
				}
				if d.Line != 3 {
					t.Errorf("unknown key pos = %d", d.Line)
				}
			}
			if strings.Contains(d.Msg, "missing cvl_file") {
				sawMissingCVL = true
			}
		}
	}
	if !sawUnknownKey || !sawMissingCVL {
		t.Errorf("manifest diagnostics = %v", res.Diagnostics)
	}
	// web.yaml is unreachable: the typoed key means no manifest refers to it.
	if !hasCode(res, CodeUnreachableFile) {
		t.Errorf("unreachable file not flagged: %v", codes(res))
	}
}

func TestManifestMissingRuleFile(t *testing.T) {
	p := NewProject()
	p.AddManifest("manifest.yaml", []byte("web:\n  cvl_file: gone.yaml\n"))
	res := Analyze(p, Options{})
	d := findCode(t, res, CodeMissingRuleFile)
	if d.Line != 2 || d.Severity != SevError {
		t.Errorf("missing rule file = %+v", d)
	}
}

func TestUselessTagFilter(t *testing.T) {
	p := NewProject()
	p.AddManifest("manifest.yaml", []byte("web:\n  cvl_file: web.yaml\n  tags: [\"#nosuchtag\"]\n"))
	p.AddRuleFile("web.yaml", []byte(cleanRule))
	res := Analyze(p, Options{})
	d := findCode(t, res, CodeUselessTagFilter)
	if d.Line != 3 || !strings.Contains(d.Msg, "#nosuchtag") {
		t.Errorf("useless tag = %+v", d)
	}
}

func TestDuplicateEntityAcrossManifests(t *testing.T) {
	p := NewProject()
	p.AddManifest("m1.yaml", []byte("web:\n  cvl_file: web.yaml\n"))
	p.AddManifest("m2.yaml", []byte("web:\n  cvl_file: web.yaml\n"))
	p.AddRuleFile("web.yaml", []byte(cleanRule))
	res := Analyze(p, Options{})
	d := findCode(t, res, CodeDuplicateEntity)
	if d.File != "m2.yaml" || !strings.Contains(d.Msg, "m1.yaml") {
		t.Errorf("duplicate entity = %+v", d)
	}
}

func TestUndefinedCompositeRuleRefWarns(t *testing.T) {
	p := NewProject()
	p.AddManifest("manifest.yaml", []byte("web:\n  cvl_file: web.yaml\n"))
	p.AddRuleFile("web.yaml", []byte(cleanRule))
	p.AddRuleFile("agg.yaml", []byte(`composite_rule_name: agg
composite_rule_description: "d"
tags: ["#cis"]
matched_description: "ok"
composite_rule: web.nosuchrule
`))
	res := Analyze(p, Options{})
	d := findCode(t, res, CodeUnknownRuleRef)
	if d.Severity != SevWarning || !strings.Contains(d.Msg, "nosuchrule") {
		t.Errorf("unknown rule ref = %+v", d)
	}
	// Value refs (CONFIGPATH...VALUE) read config keys and are not checked.
	p2 := NewProject()
	p2.AddManifest("manifest.yaml", []byte("web:\n  cvl_file: web.yaml\n"))
	p2.AddRuleFile("web.yaml", []byte(cleanRule))
	p2.AddRuleFile("agg.yaml", []byte(`composite_rule_name: agg
composite_rule_description: "d"
tags: ["#cis"]
matched_description: "ok"
composite_rule: web.some-key.CONFIGPATH=[main].VALUE == "x"
`))
	res = Analyze(p2, Options{})
	if hasCode(res, CodeUnknownRuleRef) || hasCode(res, CodeUnknownEntity) {
		t.Errorf("value ref misreported: %v", res.Diagnostics)
	}
}

func TestManifestParentCVLFileChecked(t *testing.T) {
	p := NewProject()
	p.AddManifest("manifest.yaml", []byte("web:\n  cvl_file: web.yaml\n  parent_cvl_file: gone.yaml\n"))
	p.AddRuleFile("web.yaml", []byte(cleanRule))
	res := Analyze(p, Options{})
	d := findCode(t, res, CodeMissingRuleFile)
	if d.Line != 3 {
		t.Errorf("manifest parent pos = %d", d.Line)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Code: "CVL003", Severity: SevError, File: "f.yaml", Line: 2, Col: 1, Rule: "x", Msg: "unknown keyword"}
	want := `f.yaml:2:1: error CVL003: rule "x": unknown keyword`
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestCatalogCoversEveryReportedCode(t *testing.T) {
	known := map[string]bool{}
	for _, c := range Catalog() {
		if known[c.Code] {
			t.Errorf("catalog lists %s twice", c.Code)
		}
		known[c.Code] = true
	}
	// severityOf falls back to error for unknown codes; every code the
	// analyzer can emit must be cataloged so SARIF rule indexes line up.
	for _, code := range []string{
		CodeSyntax, CodeNotMapping, CodeUnknownKeyword, CodeWrongGroup, CodeInvalidRule,
		CodeDuplicateRule, CodeDuplicateParent, CodeParentNotString, CodeMissingParent,
		CodeCycle, CodeDeadOverride, CodeShadowed, CodeDeadDisabled, CodeUnknownEntity,
		CodeUnknownRuleRef, CodeBadRegex, CodeRelativePath, CodeContradiction,
		CodeMatchWithoutVal, CodeBadManifest, CodeMissingRuleFile, CodeUnreachableFile,
		CodeUselessTagFilter, CodeDuplicateEntity, CodeMissingDescription, CodeMissingTags,
		CodeMissingOutputDesc, CodeImplicitMatch,
	} {
		if !known[code] {
			t.Errorf("code %s missing from catalog", code)
		}
	}
}
