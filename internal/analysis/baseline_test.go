package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Code: "CVL104", Severity: SevWarning, File: "b.yaml", Line: 7, Rule: "x", Msg: "shadowed"},
		{Code: "CVL303", Severity: SevWarning, File: "a.yaml", Line: 1, Msg: "unreachable"},
		{Code: "CVL104", Severity: SevWarning, File: "b.yaml", Line: 42, Rule: "x", Msg: "shadowed again"},
	}
	b := NewBaseline(diags)
	if len(b.Suppressions) != 2 {
		t.Fatalf("suppressions = %v, want 2 after dedupe", b.Suppressions)
	}
	if b.Suppressions[0].File != "a.yaml" {
		t.Errorf("not sorted: %v", b.Suppressions)
	}

	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBaseline(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Suppressions) != 2 || parsed.Version != BaselineVersion {
		t.Fatalf("round trip = %+v", parsed)
	}

	kept, suppressed := parsed.Filter(append(diags, Diagnostic{Code: "CVL102", Severity: SevError, File: "c.yaml", Msg: "cycle"}))
	if len(suppressed) != 3 {
		t.Errorf("suppressed = %v", suppressed)
	}
	if len(kept) != 1 || kept[0].Code != "CVL102" {
		t.Errorf("kept = %v", kept)
	}
}

func TestBaselineIgnoresLineNumbers(t *testing.T) {
	b := NewBaseline([]Diagnostic{{Code: "CVL104", File: "f.yaml", Line: 10, Rule: "r"}})
	kept, suppressed := b.Filter([]Diagnostic{{Code: "CVL104", File: "f.yaml", Line: 99, Rule: "r"}})
	if len(kept) != 0 || len(suppressed) != 1 {
		t.Errorf("line-shifted finding not suppressed: kept=%v", kept)
	}
}

func TestParseBaselineRejectsBadInput(t *testing.T) {
	if _, err := ParseBaseline([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	_, err := ParseBaseline([]byte(`{"version": 99, "suppressions": []}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch err = %v", err)
	}
}
