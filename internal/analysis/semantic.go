package analysis

import (
	"sort"

	"configvalidator/internal/analysis/sem"
	"configvalidator/internal/cvl"
)

// --- pass 7: inheritance replacement checks (cross-file CVL205) ---

// checkReplacedRules re-runs the preferred/non-preferred contradiction
// check across inheritance replacements: a value the parent rule prefers
// that the child's replacement lists as non-preferred marks an override
// that silently inverts the inherited intent. The same-file CVL205 check
// (checkRuleSemantics) cannot see this because inheritance replaces
// rules wholesale.
func (a *analyzer) checkReplacedRules() {
	for _, pair := range a.replacements {
		pr, cr := pair.parent.rule, pair.child.rule
		if pr == nil || cr == nil {
			continue
		}
		if !exactish(pr.PreferredMatch) || !exactish(cr.NonPreferredMatch) {
			continue
		}
		nonPref := map[string]bool{}
		for _, v := range cr.NonPreferredValue {
			nonPref[v] = true
		}
		for _, v := range pr.PreferredValue {
			if !nonPref[v] {
				continue
			}
			d := a.diagFor(pair.child, CodeContradiction, "non_preferred_value", cr.Name,
				"value %q is preferred by the inherited rule in %s but non-preferred here; the override inverts the inherited intent", v, pair.parent.file)
			d.Related = []RelatedPos{a.relatedFor(pair.parent, "preferred_value", "inherited rule prefers "+quote(v))}
			a.diags = append(a.diags, d)
		}
	}
}

// --- pass 8: constraint-level semantic analysis (CVL4xx) ---

// checkSemantics lowers every resolved rule file into the sem constraint
// IR and runs the abstract-domain checker over it, mapping rule-anchored
// findings back to source positions.
func (a *analyzer) checkSemantics() {
	if a.opts.NoSemantic {
		return
	}
	index := make(map[*cvl.Rule]*ruleEntry)
	for _, path := range a.ruleFiles {
		for _, e := range a.files[path].rules {
			if e.rule != nil {
				index[e.rule] = e
			}
		}
	}
	var units []*sem.IR
	for _, path := range a.ruleFiles {
		eff := a.effective(path)
		if len(eff) == 0 {
			continue
		}
		keys := make([]string, 0, len(eff))
		for k := range eff {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rules := make([]*cvl.Rule, 0, len(keys))
		for _, k := range keys {
			rules = append(rules, eff[k].rule)
		}
		units = append(units, sem.Lower(path, rules))
	}
	var entities []sem.Entity
	if len(a.entityFiles) > 0 {
		names := make([]string, 0, len(a.entityFiles))
		for name := range a.entityFiles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			entities = append(entities, sem.Entity{Name: name, Units: a.entityFiles[name]})
		}
	}
	for _, f := range sem.Check(units, entities) {
		a.reportFinding(f, index)
	}
	for _, pair := range a.replacements {
		if pair.parent.rule == nil || pair.child.rule == nil {
			continue
		}
		for _, f := range sem.CheckReplacement(pair.parent.rule, pair.child.rule) {
			a.reportFinding(f, index)
		}
	}
}

// reportFinding converts one sem finding into a positioned diagnostic.
func (a *analyzer) reportFinding(f sem.Finding, index map[*cvl.Rule]*ruleEntry) {
	e := index[f.Rule]
	if e == nil {
		return
	}
	d := a.diagFor(e, f.Code, anchorKey(f), f.Rule.Name, "%s", f.Msg)
	for _, rel := range f.Related {
		re := index[rel.Rule]
		if re == nil {
			continue
		}
		d.Related = append(d.Related, a.relatedFor(re, anchorKeyFor(rel.Rule, f.Code), rel.Msg))
	}
	a.diags = append(a.diags, d)
}

// anchorKey picks the rule-mapping key a finding should point at.
func anchorKey(f sem.Finding) string {
	return anchorKeyFor(f.Rule, f.Code)
}

func anchorKeyFor(r *cvl.Rule, code string) string {
	switch code {
	case sem.CodeCompositeTautology, sem.CodeCompositeContradiction:
		return "composite_rule"
	case sem.CodeSeverityConflict:
		return "severity"
	}
	if len(r.PreferredValue) > 0 {
		return "preferred_value"
	}
	if len(r.NonPreferredValue) > 0 {
		return "non_preferred_value"
	}
	if r.QueryConstraints != "" {
		return "query_constraints"
	}
	return ""
}

// diagFor builds a diagnostic anchored at a rule entry's key (or its
// start when key is "" or absent).
func (a *analyzer) diagFor(e *ruleEntry, code, key, rule, format string, args ...any) Diagnostic {
	pos := e.start()
	if key != "" {
		pos = e.keyPos(key)
	}
	before := len(a.diags)
	a.report(code, e.file, pos, rule, format, args...)
	d := a.diags[before]
	a.diags = a.diags[:before]
	return d
}

// relatedFor builds a secondary location for a rule entry.
func (a *analyzer) relatedFor(e *ruleEntry, key, msg string) RelatedPos {
	pos := e.start()
	if key != "" {
		pos = e.keyPos(key)
	}
	line, col := posOr(pos)
	name := ""
	if e.rule != nil {
		name = e.rule.Name
	}
	return RelatedPos{File: e.file, Line: line, Col: col, Rule: name, Msg: msg}
}

func quote(v string) string { return `"` + v + `"` }
