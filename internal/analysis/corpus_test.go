package analysis

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/cvlgen"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/rules"
)

// TestBuiltinRuleLibraryClean analyzes the entire embedded rule library —
// manifest plus every component rule file — and requires zero error-level
// diagnostics. Warnings are tolerated but printed so regressions are
// visible in -v output.
func TestBuiltinRuleLibraryClean(t *testing.T) {
	files := rules.Files()
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	p := NewProject()
	for _, path := range paths {
		if IsManifestPath(path) {
			p.AddManifest(path, []byte(files[path]))
		} else {
			p.AddRuleFile(path, []byte(files[path]))
		}
	}
	res := Analyze(p, Options{})
	if res.FilesChecked != len(paths) {
		t.Errorf("files checked = %d, want %d", res.FilesChecked, len(paths))
	}
	for _, d := range res.Diagnostics {
		if d.Severity == SevError {
			t.Errorf("builtin library: %s", d)
		} else {
			t.Logf("builtin library warning: %s", d)
		}
	}
}

// TestGeneratedRulesClean runs the rule generator over every recognizable
// configuration file in the synthetic fixtures and requires the formatted
// output to analyze with zero error-level diagnostics: cvlgen must never
// emit a rule the analyzer rejects.
func TestGeneratedRulesClean(t *testing.T) {
	host, _ := fixtures.UbuntuHost("corpus-host", fixtures.Profile{Seed: 7})
	generated := 0
	for _, path := range host.Files() {
		content, err := host.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		ruleSet, err := cvlgen.FromFile(nil, path, content, cvlgen.Options{})
		if err != nil {
			// Not every fixture file has a lens; those are out of scope.
			continue
		}
		if len(ruleSet) == 0 {
			continue
		}
		generated++
		rendered, err := cvl.FormatRuleFile("", ruleSet)
		if err != nil {
			t.Fatalf("format rules for %s: %v", path, err)
		}
		res := AnalyzeFile(fileNameFor(path), rendered)
		for _, d := range res.Diagnostics {
			if d.Severity == SevError {
				t.Errorf("generated rules for %s: %s", path, d)
			}
		}
	}
	if generated == 0 {
		t.Fatal("no fixture config file produced rules; corpus test is vacuous")
	}
}

func fileNameFor(configPath string) string {
	name := strings.Trim(strings.ReplaceAll(configPath, "/", "_"), "_")
	return name + ".yaml"
}

// TestSemanticCorpus runs the golden corpus under internal/fixtures/sem:
// one fixture project per CVL4xx code that must report exactly that code,
// plus clean projects that must report no CVL4xx at all (no false
// positives on legitimate overrides, regex envelopes, composites).
func TestSemanticCorpus(t *testing.T) {
	cases := []struct {
		dir  string
		want []string // exact set of expected CVL4xx codes
	}{
		{"cvl401_unsat", []string{"CVL401"}},
		{"cvl402_subsumed", []string{"CVL402"}},
		{"cvl403_port", []string{"CVL403"}},
		{"cvl404_tautology", []string{"CVL404"}},
		{"cvl405_contradiction", []string{"CVL405"}},
		{"cvl406_severity", []string{"CVL406"}},
		{"cvl407_type", []string{"CVL407"}},
		{"cvl205_inherit", nil}, // cross-file CVL205, asserted below
		{"clean", nil},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			p := NewProject()
			if err := p.AddDir(filepath.Join("..", "fixtures", "sem", tc.dir)); err != nil {
				t.Fatal(err)
			}
			res := Analyze(p, Options{})
			got := map[string]bool{}
			for _, d := range res.Diagnostics {
				if strings.HasPrefix(d.Code, "CVL4") {
					got[d.Code] = true
				}
			}
			want := map[string]bool{}
			for _, c := range tc.want {
				want[c] = true
			}
			for c := range want {
				if !got[c] {
					t.Errorf("expected %s, not reported; diagnostics:\n%s", c, renderAll(res.Diagnostics))
				}
			}
			for c := range got {
				if !want[c] {
					t.Errorf("unexpected %s; diagnostics:\n%s", c, renderAll(res.Diagnostics))
				}
			}

			switch tc.dir {
			case "cvl403_port":
				// Acceptance shape: positions in both files.
				assertCrossFile(t, res.Diagnostics, "CVL403", "child.yaml", "base.yaml")
			case "cvl205_inherit":
				assertCrossFile(t, res.Diagnostics, "CVL205", "child.yaml", "base.yaml")
			}
		})
	}
}

// assertCrossFile requires a diagnostic with the given code positioned in
// primaryFile with a related location positioned in relatedFile.
func assertCrossFile(t *testing.T, diags []Diagnostic, code, primaryFile, relatedFile string) {
	t.Helper()
	for _, d := range diags {
		if d.Code != code || !strings.HasSuffix(d.File, primaryFile) {
			continue
		}
		if d.Line <= 0 {
			t.Errorf("%s: no position in %s: %s", code, primaryFile, d)
		}
		for _, rel := range d.Related {
			if strings.HasSuffix(rel.File, relatedFile) {
				if rel.Line <= 0 {
					t.Errorf("%s: no position in related %s: %s", code, relatedFile, d)
				}
				return
			}
		}
		t.Errorf("%s: no related location in %s: %s", code, relatedFile, d)
		return
	}
	t.Errorf("no %s diagnostic in %s:\n%s", code, primaryFile, renderAll(diags))
}

func renderAll(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
