package analysis

import (
	"sort"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/cvlgen"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/rules"
)

// TestBuiltinRuleLibraryClean analyzes the entire embedded rule library —
// manifest plus every component rule file — and requires zero error-level
// diagnostics. Warnings are tolerated but printed so regressions are
// visible in -v output.
func TestBuiltinRuleLibraryClean(t *testing.T) {
	files := rules.Files()
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	p := NewProject()
	for _, path := range paths {
		if IsManifestPath(path) {
			p.AddManifest(path, []byte(files[path]))
		} else {
			p.AddRuleFile(path, []byte(files[path]))
		}
	}
	res := Analyze(p, Options{})
	if res.FilesChecked != len(paths) {
		t.Errorf("files checked = %d, want %d", res.FilesChecked, len(paths))
	}
	for _, d := range res.Diagnostics {
		if d.Severity == SevError {
			t.Errorf("builtin library: %s", d)
		} else {
			t.Logf("builtin library warning: %s", d)
		}
	}
}

// TestGeneratedRulesClean runs the rule generator over every recognizable
// configuration file in the synthetic fixtures and requires the formatted
// output to analyze with zero error-level diagnostics: cvlgen must never
// emit a rule the analyzer rejects.
func TestGeneratedRulesClean(t *testing.T) {
	host, _ := fixtures.UbuntuHost("corpus-host", fixtures.Profile{Seed: 7})
	generated := 0
	for _, path := range host.Files() {
		content, err := host.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		ruleSet, err := cvlgen.FromFile(nil, path, content, cvlgen.Options{})
		if err != nil {
			// Not every fixture file has a lens; those are out of scope.
			continue
		}
		if len(ruleSet) == 0 {
			continue
		}
		generated++
		rendered, err := cvl.FormatRuleFile("", ruleSet)
		if err != nil {
			t.Fatalf("format rules for %s: %v", path, err)
		}
		res := AnalyzeFile(fileNameFor(path), rendered)
		for _, d := range res.Diagnostics {
			if d.Severity == SevError {
				t.Errorf("generated rules for %s: %s", path, d)
			}
		}
	}
	if generated == 0 {
		t.Fatal("no fixture config file produced rules; corpus test is vacuous")
	}
}

func fileNameFor(configPath string) string {
	name := strings.Trim(strings.ReplaceAll(configPath, "/", "_"), "_")
	return name + ".yaml"
}
