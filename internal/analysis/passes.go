package analysis

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"configvalidator/internal/cvl"
	"configvalidator/internal/yaml"
)

// ruleEntry is one rule mapping within a file, with its parse outcome.
type ruleEntry struct {
	file string
	m    *yaml.Map
	rule *cvl.Rule // nil when the mapping failed to parse
}

func (e *ruleEntry) start() yaml.Pos { return e.m.Start() }

// keyPos returns the position of key in the rule mapping, falling back to
// the rule's start.
func (e *ruleEntry) keyPos(key string) yaml.Pos {
	if p := e.m.KeyPos(key); !p.IsZero() {
		return p
	}
	return e.m.Start()
}

// fileInfo is the analyzer's view of one rule file.
type fileInfo struct {
	path      string
	parent    string // raw parent_cvl_file reference; "" when none
	parentPos yaml.Pos
	rules     []*ruleEntry

	// Inheritance resolution state.
	state     int // 0 unvisited, 1 visiting, 2 resolved
	effective map[string]*ruleEntry
}

// manEntity is one entity stanza of a manifest.
type manEntity struct {
	manifest  string
	name      string
	namePos   yaml.Pos
	enabled   bool
	cvlFile   string
	cvlPos    yaml.Pos
	parentCVL string
	parentPos yaml.Pos
	tags      []string
	tagsPos   yaml.Pos
}

type analyzer struct {
	p         *Project
	opts      Options
	diags     []Diagnostic
	files     map[string]*fileInfo
	ruleFiles []string // rule-file paths in project order
	manifests []string // manifest paths in project order
	entities  []*manEntity

	// replacements records every (inherited rule, replacing rule) pair
	// found while resolving inheritance, for the cross-chain checks
	// (CVL205 across files, CVL403).
	replacements []replacePair
	// entityFiles maps entity name → resolved rule-file chain, filled by
	// checkComposites and reused by the semantic pass.
	entityFiles map[string][]string
}

// replacePair is one inheritance replacement: child's rule entry took the
// place of the parent's for the same rule key.
type replacePair struct {
	parent, child *ruleEntry
}

func newAnalyzer(p *Project, opts Options) *analyzer {
	a := &analyzer{p: p, opts: opts, files: map[string]*fileInfo{}}
	for _, path := range p.order {
		if p.manifest[path] {
			a.manifests = append(a.manifests, path)
		} else {
			a.ruleFiles = append(a.ruleFiles, path)
		}
	}
	return a
}

// report appends a diagnostic with the code's default severity.
func (a *analyzer) report(code, file string, pos yaml.Pos, rule, format string, args ...any) {
	sev := severityOf(code)
	if code == CodeMissingParent && a.opts.ExternalParents {
		sev = SevWarning
	}
	line, col := posOr(pos)
	a.diags = append(a.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		File:     file,
		Line:     line,
		Col:      col,
		Rule:     rule,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// --- pass 1: per-file parsing ---

func (a *analyzer) parseRuleFiles() {
	for _, path := range a.ruleFiles {
		a.files[path] = a.parseRuleFile(path, a.p.files[path])
	}
}

func (a *analyzer) parseRuleFile(path string, content []byte) *fileInfo {
	fi := &fileInfo{path: path}
	docs, err := yaml.DecodeAll(content)
	if err != nil {
		var se *yaml.SyntaxError
		if errors.As(err, &se) {
			a.report(CodeSyntax, path, yaml.Pos{Line: se.Line, Col: se.Col}, "", "%s", se.Msg)
		} else {
			a.report(CodeSyntax, path, yaml.Pos{}, "", "%v", err)
		}
		return fi
	}
	var ruleMaps []*yaml.Map
	for _, doc := range docs {
		switch v := doc.(type) {
		case nil:
		case *yaml.Map:
			ruleMaps = append(ruleMaps, v)
		case []any:
			for i, item := range v {
				if m, ok := item.(*yaml.Map); ok {
					ruleMaps = append(ruleMaps, m)
				} else {
					a.report(CodeNotMapping, path, yaml.Pos{}, "", "sequence element %d is %T, want a mapping", i+1, item)
				}
			}
		default:
			a.report(CodeNotMapping, path, yaml.Pos{}, "", "document is %T, want a mapping", doc)
		}
	}
	seen := map[string]yaml.Pos{}
	for _, m := range ruleMaps {
		if m.Len() == 1 && m.Has("parent_cvl_file") {
			pos := m.KeyPos("parent_cvl_file")
			parent, ok := m.String("parent_cvl_file")
			switch {
			case !ok:
				a.report(CodeParentNotString, path, pos, "", "parent_cvl_file must be a string")
			case fi.parent != "":
				a.report(CodeDuplicateParent, path, pos, "", "duplicate parent_cvl_file (already inherits %q)", fi.parent)
			default:
				fi.parent, fi.parentPos = parent, pos
			}
			continue
		}
		entry := a.checkRuleMap(path, m)
		fi.rules = append(fi.rules, entry)
		if entry.rule == nil {
			continue
		}
		key := entry.rule.Key()
		if first, dup := seen[key]; dup {
			a.report(CodeDuplicateRule, path, entry.start(), entry.rule.Name,
				"duplicate rule (same type and name); first defined at line %d", first.Line)
		} else {
			seen[key] = entry.start()
		}
	}
	return fi
}

// ruleNameOf extracts the rule's name for attribution even when the full
// parse fails.
func ruleNameOf(m *yaml.Map) string {
	for _, key := range []string{"config_name", "config_schema_name", "path_name", "script_name", "composite_rule_name"} {
		if s, ok := m.String(key); ok {
			return s
		}
	}
	return ""
}

// checkRuleMap validates one rule mapping: unknown keywords and
// wrong-group keywords key-by-key (positioned at the offending key), then
// the full semantic parse.
func (a *analyzer) checkRuleMap(path string, m *yaml.Map) *ruleEntry {
	entry := &ruleEntry{file: path, m: m}
	name := ruleNameOf(m)
	broken := false
	for _, key := range m.Keys() {
		if _, known := cvl.Keywords[key]; !known {
			msg := fmt.Sprintf("unknown keyword %q", key)
			if s := cvl.SuggestKeyword(key); s != "" {
				msg += fmt.Sprintf(" (did you mean %q?)", s)
			}
			a.report(CodeUnknownKeyword, path, m.KeyPos(key), name, "%s", msg)
			broken = true
		}
	}
	ruleType, err := cvl.DetectRuleType(m)
	if err != nil {
		if !broken {
			a.report(CodeInvalidRule, path, m.Start(), name, "%v", err)
		}
		return entry
	}
	allowed := cvl.AllowedGroups(ruleType)
	for _, key := range m.Keys() {
		if group, known := cvl.Keywords[key]; known && !allowed[group] {
			a.report(CodeWrongGroup, path, m.KeyPos(key), name,
				"keyword %q belongs to %s rules, not %s rules", key, group, ruleType)
			broken = true
		}
	}
	if broken {
		return entry
	}
	rule, err := cvl.ParseRule(m)
	if err != nil {
		pos := m.Start()
		if key := offendingKeyword(err.Error()); key != "" && !m.KeyPos(key).IsZero() {
			pos = m.KeyPos(key)
		}
		a.report(CodeInvalidRule, path, pos, name, "%v", err)
		return entry
	}
	rule.Source = path
	rule.Line = m.Start().Line
	entry.rule = rule
	return entry
}

// offendingKeyword extracts the keyword named in a cvl.ParseRule error of
// the form `keyword "x": ...`, so the diagnostic can point at that key.
func offendingKeyword(msg string) string {
	const prefix = `keyword "`
	if !strings.HasPrefix(msg, prefix) {
		return ""
	}
	rest := msg[len(prefix):]
	end := strings.IndexByte(rest, '"')
	if end < 0 {
		return ""
	}
	return rest[:end]
}

// --- pass 2: manifests ---

var manifestKeys = []string{"enabled", "config_search_paths", "cvl_file", "parent_cvl_file", "rule_type", "tags"}

func (a *analyzer) parseManifests() {
	owner := map[string]string{} // entity name → manifest that defined it
	for _, path := range a.manifests {
		a.parseManifest(path, a.p.files[path], owner)
	}
}

func (a *analyzer) parseManifest(path string, content []byte, owner map[string]string) {
	doc, err := yaml.Decode(content)
	if err != nil {
		var se *yaml.SyntaxError
		if errors.As(err, &se) {
			a.report(CodeSyntax, path, yaml.Pos{Line: se.Line, Col: se.Col}, "", "%s", se.Msg)
		} else {
			a.report(CodeSyntax, path, yaml.Pos{}, "", "%v", err)
		}
		return
	}
	if doc == nil {
		return
	}
	root, ok := doc.(*yaml.Map)
	if !ok {
		a.report(CodeNotMapping, path, yaml.Pos{}, "", "manifest document is %T, want a mapping of entities", doc)
		return
	}
	for _, name := range root.Keys() {
		namePos := root.KeyPos(name)
		body, ok := root.Map(name)
		if !ok {
			a.report(CodeBadManifest, path, namePos, "", "entity %q must be a mapping", name)
			continue
		}
		ent := &manEntity{manifest: path, name: name, namePos: namePos, enabled: true}
		for _, key := range body.Keys() {
			pos := body.KeyPos(key)
			value, _ := body.Get(key)
			var err error
			switch key {
			case "enabled":
				err = asBool(value, &ent.enabled)
			case "config_search_paths":
				var paths []string
				err = asStringSlice(value, &paths)
			case "cvl_file":
				if err = asString(value, &ent.cvlFile); err == nil {
					ent.cvlPos = pos
				}
			case "parent_cvl_file":
				if err = asString(value, &ent.parentCVL); err == nil {
					ent.parentPos = pos
				}
			case "rule_type":
				var rt string
				if err = asString(value, &rt); err == nil {
					_, err = cvl.ParseRuleType(rt)
				}
			case "tags":
				if err = asStringSlice(value, &ent.tags); err == nil {
					ent.tagsPos = pos
				}
			default:
				msg := fmt.Sprintf("unknown manifest key %q", key)
				if s := suggestFrom(key, manifestKeys); s != "" {
					msg += fmt.Sprintf(" (did you mean %q?)", s)
				}
				a.report(CodeBadManifest, path, pos, "", "entity %q: %s", name, msg)
				continue
			}
			if err != nil {
				a.report(CodeBadManifest, path, pos, "", "entity %q: key %q: %v", name, key, err)
			}
		}
		if ent.cvlFile == "" {
			a.report(CodeBadManifest, path, namePos, "", "entity %q missing cvl_file", name)
		}
		if prev, dup := owner[name]; dup {
			a.report(CodeDuplicateEntity, path, namePos, "", "entity %q already defined in %s", name, prev)
		} else {
			owner[name] = path
		}
		a.entities = append(a.entities, ent)
	}
}

// suggestFrom proposes the closest candidate within edit distance 2.
func suggestFrom(key string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if d := editDistance(key, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// --- pass 3: inheritance graph ---

func (a *analyzer) resolveInheritance() {
	for _, path := range a.ruleFiles {
		a.effective(path)
	}
}

// effective resolves a file's inheritance chain and returns its effective
// rule set (key → defining entry), reporting missing parents, cycles,
// dead overrides/disables, and silent shadowing along the way.
func (a *analyzer) effective(path string) map[string]*ruleEntry {
	fi := a.files[path]
	if fi == nil {
		return nil
	}
	if fi.state == 2 {
		return fi.effective
	}
	fi.state = 1
	var parentEff map[string]*ruleEntry
	if fi.parent != "" {
		target, found := a.p.resolveRef(path, fi.parent)
		pfi := a.files[target]
		switch {
		case !found || pfi == nil:
			a.report(CodeMissingParent, path, fi.parentPos, "",
				"parent rule file %q not found in project", fi.parent)
		case pfi.state == 1:
			a.report(CodeCycle, path, fi.parentPos, "",
				"inheritance cycle: %q inherits %q, which (transitively) inherits it back", path, fi.parent)
		default:
			parentEff = a.effective(target)
		}
	}
	eff := make(map[string]*ruleEntry, len(parentEff)+len(fi.rules))
	for k, v := range parentEff {
		eff[k] = v
	}
	seenHere := map[string]bool{}
	for _, e := range fi.rules {
		if e.rule == nil {
			continue
		}
		key := e.rule.Key()
		inherited, inParent := parentEff[key]
		switch {
		case e.rule.Disabled:
			if !inParent {
				a.report(CodeDeadDisabled, path, e.start(), e.rule.Name,
					"disabled rule matches no inherited rule; nothing to disable")
			}
			delete(eff, key)
		case inParent && !e.rule.Override && !seenHere[key]:
			a.report(CodeShadowed, path, e.start(), e.rule.Name,
				"silently shadows the rule inherited from %s; add override: true to make the replacement explicit", inherited.file)
			a.replacements = append(a.replacements, replacePair{parent: inherited, child: e})
			eff[key] = e
		case !inParent && e.rule.Override:
			a.report(CodeDeadOverride, path, e.start(), e.rule.Name,
				"marked override: true but no inherited rule matches")
			eff[key] = e
		default:
			if inParent {
				a.replacements = append(a.replacements, replacePair{parent: inherited, child: e})
			}
			eff[key] = e
		}
		seenHere[key] = true
	}
	fi.state = 2
	fi.effective = eff
	return eff
}

// --- pass 4: per-rule semantic checks ---

func (a *analyzer) checkRules() {
	for _, path := range a.ruleFiles {
		for _, e := range a.files[path].rules {
			if e.rule != nil {
				a.checkRuleSemantics(e)
				// Disable stubs exist only to suppress an inherited rule;
				// they are exempt from the documentation style checks.
				if !e.rule.Disabled {
					a.checkRuleStyle(e)
				}
			}
		}
	}
}

func (a *analyzer) checkRuleSemantics(e *ruleEntry) {
	r := e.rule
	path := e.file
	if r.PreferredMatch.Kind == cvl.MatchRegex {
		a.checkRegexes(e, "preferred_value", r.PreferredValue)
	}
	if r.NonPreferredMatch.Kind == cvl.MatchRegex {
		a.checkRegexes(e, "non_preferred_value", r.NonPreferredValue)
	}
	// A value in both lists under exact matching can never pass: the
	// non-preferred check rejects what the preferred list demands.
	if exactish(r.PreferredMatch) && exactish(r.NonPreferredMatch) {
		nonPref := map[string]bool{}
		for _, v := range r.NonPreferredValue {
			nonPref[v] = true
		}
		for _, v := range r.PreferredValue {
			if nonPref[v] {
				a.report(CodeContradiction, path, e.keyPos("preferred_value"), r.Name,
					"value %q is listed as both preferred and non-preferred; the rule can never pass on it", v)
			}
		}
	}
	if !r.PreferredMatch.IsZero() && len(r.PreferredValue) == 0 {
		a.report(CodeMatchWithoutVal, path, e.keyPos("preferred_value_match"), r.Name,
			"preferred_value_match without preferred_value has no effect")
	}
	if !r.NonPreferredMatch.IsZero() && len(r.NonPreferredValue) == 0 {
		a.report(CodeMatchWithoutVal, path, e.keyPos("non_preferred_value_match"), r.Name,
			"non_preferred_value_match without non_preferred_value has no effect")
	}
	if r.Type == cvl.TypePath && !strings.HasPrefix(r.Name, "/") {
		a.report(CodeRelativePath, path, e.keyPos("path_name"), r.Name,
			"path rule name %q is not an absolute path; path rules address filesystem locations", r.Name)
	}
}

func exactish(m cvl.MatchSpec) bool {
	return m.IsZero() || m.Kind == cvl.MatchExact
}

func (a *analyzer) checkRegexes(e *ruleEntry, key string, values []string) {
	for _, v := range values {
		if _, err := regexp.Compile(v); err != nil {
			a.report(CodeBadRegex, e.file, e.keyPos(key), e.rule.Name, "invalid regular expression %q: %v", v, err)
		}
	}
}

// checkRuleStyle mirrors cvl.lintRule's maintainability warnings, with
// positions and codes.
func (a *analyzer) checkRuleStyle(e *ruleEntry) {
	r := e.rule
	path := e.file
	if r.Description == "" {
		a.report(CodeMissingDescription, path, e.start(), r.Name, "missing description")
	}
	if len(r.Tags) == 0 {
		a.report(CodeMissingTags, path, e.start(), r.Name, "missing tags (add a compliance tag such as \"#cis\")")
	}
	missingOutput := func(keyword string) {
		a.report(CodeMissingOutputDesc, path, e.start(), r.Name, "missing %s", keyword)
	}
	switch r.Type {
	case cvl.TypeTree, cvl.TypeScript:
		if len(r.PreferredValue) > 0 && r.NotMatchedDescription == "" {
			missingOutput("not_matched_preferred_value_description")
		}
		if r.MatchedDescription == "" {
			missingOutput("matched_description")
		}
		if r.Type == cvl.TypeTree && !r.AbsentPass && r.NotPresentDescription == "" {
			missingOutput("not_present_description")
		}
	case cvl.TypeSchema, cvl.TypeComposite:
		if r.MatchedDescription == "" {
			missingOutput("matched_description")
		}
	}
	if len(r.PreferredValue) > 0 && r.PreferredMatch.IsZero() {
		a.report(CodeImplicitMatch, path, e.keyPos("preferred_value"), r.Name,
			"preferred_value without preferred_value_match (defaults to exact,any)")
	}
	if len(r.NonPreferredValue) > 0 && r.NonPreferredMatch.IsZero() {
		a.report(CodeImplicitMatch, path, e.keyPos("non_preferred_value"), r.Name,
			"non_preferred_value without non_preferred_value_match (defaults to exact,any)")
	}
}

// --- pass 5: cross-file composite checks ---

// entityRuleNames returns the rule names reachable from an entity's
// manifest entry: its cvl_file chain plus any manifest-level parent.
func (a *analyzer) entityRuleNames(files []string) map[string]bool {
	names := map[string]bool{}
	for _, f := range files {
		for _, e := range a.effective(f) {
			names[e.rule.Name] = true
		}
	}
	return names
}

func (a *analyzer) checkComposites() {
	if len(a.entities) == 0 {
		return // single-file mode: no entity universe to check against
	}
	entityFiles := map[string][]string{}
	entityNames := make([]string, 0, len(a.entities))
	for _, ent := range a.entities {
		entityNames = append(entityNames, ent.name)
		var files []string
		for _, ref := range []struct {
			path string
			pos  yaml.Pos
		}{{ent.cvlFile, ent.cvlPos}, {ent.parentCVL, ent.parentPos}} {
			if ref.path == "" {
				continue
			}
			target, found := a.p.resolveRef(ent.manifest, ref.path)
			if !found || a.files[target] == nil {
				a.report(CodeMissingRuleFile, ent.manifest, ref.pos, "",
					"entity %q references rule file %q, which is not in the project", ent.name, ref.path)
				continue
			}
			files = append(files, target)
		}
		entityFiles[ent.name] = files
	}
	a.entityFiles = entityFiles
	for _, path := range a.ruleFiles {
		for _, e := range a.files[path].rules {
			if e.rule == nil || e.rule.Type != cvl.TypeComposite || e.rule.CompositeExpr == nil {
				continue
			}
			pos := e.keyPos("composite_rule")
			for _, ref := range e.rule.CompositeExpr.Refs() {
				files, known := entityFiles[ref.Entity]
				if !known {
					msg := fmt.Sprintf("references entity %q, which no manifest defines", ref.Entity)
					if s := suggestFrom(ref.Entity, entityNames); s != "" {
						msg += fmt.Sprintf(" (did you mean %q?)", s)
					}
					a.report(CodeUnknownEntity, path, pos, e.rule.Name, "%s", msg)
					continue
				}
				// Bare refs resolve against rule results first; only those
				// can be checked statically (value refs read config keys).
				if ref.WantValue || ref.Op != "" {
					continue
				}
				if !a.entityRuleNames(files)[ref.Key] {
					a.report(CodeUnknownRuleRef, path, pos, e.rule.Name,
						"no rule named %q on entity %q; the reference will fall back to configuration-key existence", ref.Key, ref.Entity)
				}
			}
		}
	}
	a.checkTagFilters(entityFiles)
}

func (a *analyzer) checkTagFilters(entityFiles map[string][]string) {
	for _, ent := range a.entities {
		if len(ent.tags) == 0 {
			continue
		}
		files := entityFiles[ent.name]
		if len(files) == 0 {
			continue // the missing-file diagnostic already covers it
		}
		available := map[string]bool{}
		for _, f := range files {
			for _, e := range a.effective(f) {
				for _, t := range e.rule.Tags {
					available[t] = true
				}
			}
		}
		for _, tag := range ent.tags {
			if !available[tag] {
				a.report(CodeUselessTagFilter, ent.manifest, ent.tagsPos, "",
					"entity %q: tag %q matches no rule in %s; the filter selects nothing", ent.name, tag, strings.Join(files, ", "))
			}
		}
	}
}

// --- pass 6: manifest reachability ---

func (a *analyzer) checkReachability() {
	if len(a.entities) == 0 {
		return // no manifests: plain rule-file lint, reachability is moot
	}
	reachable := map[string]bool{}
	var mark func(path string)
	mark = func(path string) {
		if path == "" || reachable[path] {
			return
		}
		reachable[path] = true
		fi := a.files[path]
		if fi == nil || fi.parent == "" {
			return
		}
		if target, found := a.p.resolveRef(path, fi.parent); found {
			mark(target)
		}
	}
	for _, ent := range a.entities {
		for _, ref := range []string{ent.cvlFile, ent.parentCVL} {
			if ref == "" {
				continue
			}
			if target, found := a.p.resolveRef(ent.manifest, ref); found {
				mark(target)
			}
		}
	}
	for _, path := range a.ruleFiles {
		if !reachable[path] {
			a.report(CodeUnreachableFile, path, yaml.Pos{}, "",
				"rule file is not referenced by any manifest (directly or through inheritance)")
		}
	}
}

// --- value coercion (manifest parsing) ---

func asString(value any, dst *string) error {
	switch v := value.(type) {
	case string:
		*dst = v
	case int64:
		*dst = strconv.FormatInt(v, 10)
	case float64:
		*dst = strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		*dst = strconv.FormatBool(v)
	default:
		return fmt.Errorf("want a string, got %T", value)
	}
	return nil
}

func asStringSlice(value any, dst *[]string) error {
	switch v := value.(type) {
	case []any:
		out := make([]string, 0, len(v))
		for _, item := range v {
			var s string
			if err := asString(item, &s); err != nil {
				return fmt.Errorf("list element: %w", err)
			}
			out = append(out, s)
		}
		*dst = out
	case string:
		*dst = []string{v}
	case nil:
		*dst = nil
	default:
		return fmt.Errorf("want a list of strings, got %T", value)
	}
	return nil
}

func asBool(value any, dst *bool) error {
	b, ok := value.(bool)
	if !ok {
		return fmt.Errorf("want a boolean, got %T", value)
	}
	*dst = b
	return nil
}

// editDistance is the Levenshtein distance, used for did-you-mean hints.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
