package entity

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"configvalidator/internal/pkgdb"
)

func TestClean(t *testing.T) {
	tests := []struct{ in, want string }{
		{"/etc/ssh/sshd_config", "/etc/ssh/sshd_config"},
		{"etc/ssh", "/etc/ssh"},
		{"/etc//ssh/", "/etc/ssh"},
		{"/etc/./ssh", "/etc/ssh"},
		{"/etc/../var", "/var"},
		{"/../..", "/"},
		{"", "/"},
		{"/", "/"},
	}
	for _, tt := range tests {
		if got := Clean(tt.in); got != tt.want {
			t.Errorf("Clean(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeHost, TypeImage, TypeContainer, TypeCloud, TypeFrame} {
		back, err := ParseType(typ.String())
		if err != nil || back != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), back, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("bogus type parsed")
	}
}

func TestMemFiles(t *testing.T) {
	m := NewMem("test-host", TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin no\n"), WithMode(0o600), WithOwner(0, 0))
	m.AddFile("etc/sysctl.conf", []byte("net.ipv4.ip_forward = 0\n"))

	data, err := m.ReadFile("/etc/ssh/sshd_config")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "PermitRootLogin no\n" {
		t.Errorf("content = %q", data)
	}
	// Path normalization on read.
	if _, err := m.ReadFile("//etc//sysctl.conf"); err != nil {
		t.Errorf("normalized read failed: %v", err)
	}
	if _, err := m.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing file error = %v", err)
	}
	// Mutating the returned slice must not affect the entity.
	data[0] = 'X'
	again, _ := m.ReadFile("/etc/ssh/sshd_config")
	if again[0] != 'P' {
		t.Error("ReadFile returned aliased data")
	}
}

func TestMemStat(t *testing.T) {
	m := NewMem("h", TypeHost)
	mod := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	m.AddFile("/etc/passwd", []byte("root:x:0:0::/root:/bin/bash\n"), WithMode(0o644), WithOwner(0, 0), WithModTime(mod))

	fi, err := m.Stat("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Perm() != 0o644 || fi.UID != 0 || fi.GID != 0 || fi.IsDir() {
		t.Errorf("fi = %+v", fi)
	}
	if fi.Ownership() != "0:0" {
		t.Errorf("ownership = %q", fi.Ownership())
	}
	if !fi.ModTime.Equal(mod) {
		t.Errorf("modtime = %v", fi.ModTime)
	}
	// Implicit parent directory.
	di, err := m.Stat("/etc")
	if err != nil {
		t.Fatal(err)
	}
	if !di.IsDir() {
		t.Error("/etc should be a dir")
	}
	if _, err := m.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing stat error = %v", err)
	}
}

func TestMemWalk(t *testing.T) {
	m := NewMem("h", TypeHost)
	m.AddFile("/etc/nginx/nginx.conf", []byte("x"))
	m.AddFile("/etc/nginx/sites-enabled/default", []byte("y"))
	m.AddFile("/etc/ssh/sshd_config", []byte("z"))
	m.AddFile("/var/log/app.log", []byte("log"))

	var visited []string
	err := m.Walk("/etc/nginx", func(fi FileInfo) error {
		visited = append(visited, fi.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Directories are visited too (with IsDir set), in sorted order.
	want := []string{"/etc/nginx/nginx.conf", "/etc/nginx/sites-enabled", "/etc/nginx/sites-enabled/default"}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("visited = %v", visited)
	}
	var files []string
	if err := m.Walk("/etc/nginx", func(fi FileInfo) error {
		if !fi.IsDir() {
			files = append(files, fi.Path)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(files, []string{"/etc/nginx/nginx.conf", "/etc/nginx/sites-enabled/default"}) {
		t.Errorf("files = %v", files)
	}

	// Walk of a file path visits just the file.
	visited = nil
	if err := m.Walk("/etc/ssh/sshd_config", func(fi FileInfo) error {
		visited = append(visited, fi.Path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(visited, []string{"/etc/ssh/sshd_config"}) {
		t.Errorf("file walk = %v", visited)
	}

	if err := m.Walk("/missing", func(FileInfo) error { return nil }); !errors.Is(err, ErrNotExist) {
		t.Errorf("walk missing = %v", err)
	}

	// Error propagation stops the walk.
	sentinel := errors.New("stop")
	count := 0
	err = m.Walk("/", func(FileInfo) error {
		count++
		return sentinel
	})
	if !errors.Is(err, sentinel) || count != 1 {
		t.Errorf("err = %v count = %d", err, count)
	}
}

func TestMemPackagesAndFeatures(t *testing.T) {
	m := NewMem("h", TypeHost)
	m.SetPackages([]pkgdb.Package{{Name: "nginx", Version: "1.10.3"}})
	m.AddPackage(pkgdb.Package{Name: "openssh-server", Version: "1:7.2p2"})
	db, err := m.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("packages = %d", db.Len())
	}
	m.SetFeature("mysql.ssl", "have_ssl: YES")
	out, err := m.RunFeature("mysql.ssl")
	if err != nil || out != "have_ssl: YES" {
		t.Errorf("feature = %q, %v", out, err)
	}
	if _, err := m.RunFeature("absent"); !errors.Is(err, ErrNoFeature) {
		t.Errorf("absent feature err = %v", err)
	}
	if got := m.Features(); !reflect.DeepEqual(got, []string{"mysql.ssl"}) {
		t.Errorf("features = %v", got)
	}
}

func TestMemRemoveFile(t *testing.T) {
	m := NewMem("h", TypeHost)
	m.AddFile("/a", []byte("1"))
	m.RemoveFile("/a")
	if _, err := m.ReadFile("/a"); !errors.Is(err, ErrNotExist) {
		t.Error("file still present after remove")
	}
}

func TestMemFilesAndDirsListing(t *testing.T) {
	m := NewMem("h", TypeHost)
	m.AddFile("/b/file", []byte("1"))
	m.AddFile("/a/file", []byte("2"))
	m.AddDir("/c/empty")
	files := m.Files()
	if !reflect.DeepEqual(files, []string{"/a/file", "/b/file"}) {
		t.Errorf("files = %v", files)
	}
	dirs := m.Dirs()
	want := []string{"/", "/a", "/b", "/c", "/c/empty"}
	if !reflect.DeepEqual(dirs, want) {
		t.Errorf("dirs = %v", dirs)
	}
}

func TestOSDirEntity(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, filepath.Join(root, "etc/ssh/sshd_config"), "PermitRootLogin no\n", 0o600)
	mustWrite(t, filepath.Join(root, "etc/sysctl.conf"), "net.ipv4.ip_forward = 0\n", 0o644)
	mustWrite(t, filepath.Join(root, "var/lib/dpkg/status"),
		"Package: nginx\nStatus: install ok installed\nVersion: 1.10.3\n\n", 0o644)

	e := NewOSDir("testroot", TypeHost, root)
	if e.Name() != "testroot" || e.Type() != TypeHost {
		t.Errorf("identity = %s/%s", e.Name(), e.Type())
	}
	data, err := e.ReadFile("/etc/ssh/sshd_config")
	if err != nil || string(data) != "PermitRootLogin no\n" {
		t.Errorf("read = %q, %v", data, err)
	}
	fi, err := e.Stat("/etc/ssh/sshd_config")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Perm() != 0o600 {
		t.Errorf("perm = %o", fi.Perm())
	}
	if _, err := e.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing = %v", err)
	}

	var walked []string
	if err := e.Walk("/etc", func(fi FileInfo) error {
		walked = append(walked, fi.Path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(walked, []string{"/etc/ssh", "/etc/ssh/sshd_config", "/etc/sysctl.conf"}) {
		t.Errorf("walked = %v", walked)
	}
	if err := e.Walk("/absent", func(FileInfo) error { return nil }); !errors.Is(err, ErrNotExist) {
		t.Errorf("walk missing = %v", err)
	}

	db, err := e.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := db.Get("nginx"); !ok || p.Version != "1.10.3" {
		t.Errorf("nginx pkg = %+v ok=%v", p, ok)
	}

	e.SetFeature("sysctl.live", "net.ipv4.ip_forward = 0")
	if out, err := e.RunFeature("sysctl.live"); err != nil || out == "" {
		t.Errorf("feature = %q, %v", out, err)
	}
	if _, err := e.RunFeature("nope"); !errors.Is(err, ErrNoFeature) {
		t.Errorf("absent feature = %v", err)
	}
}

func TestOSDirNoPackages(t *testing.T) {
	e := NewOSDir("empty", TypeHost, t.TempDir())
	db, err := e.Packages()
	if err != nil || db.Len() != 0 {
		t.Errorf("empty packages = %v, %v", db, err)
	}
}

func mustWrite(t *testing.T, path, content string, mode fs.FileMode) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), mode); err != nil {
		t.Fatal(err)
	}
}
