package entity

import (
	"archive/tar"
	"bytes"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/pkgdb"
)

func tarEntityFixture() *Mem {
	m := NewMem("tarred", TypeContainer)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin no\n"),
		WithMode(0o600), WithOwner(0, 0),
		WithModTime(time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)))
	m.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = 0\n"), WithMode(0o644))
	m.AddDir("/var/empty", WithMode(0o700), WithOwner(0, 0))
	m.SetPackages([]pkgdb.Package{{Name: "nginx", Version: "1.10.3", Status: "install ok installed"}})
	return m
}

func TestTarRoundTrip(t *testing.T) {
	src := tarEntityFixture()
	var buf bytes.Buffer
	if err := src.WriteTar(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := NewFromTar("tarred", TypeContainer, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := back.ReadFile("/etc/ssh/sshd_config")
	if err != nil || string(data) != "PermitRootLogin no\n" {
		t.Errorf("content = %q, %v", data, err)
	}
	fi, err := back.Stat("/etc/ssh/sshd_config")
	if err != nil || fi.Perm() != 0o600 || fi.Ownership() != "0:0" {
		t.Errorf("metadata = %+v, %v", fi, err)
	}
	if !fi.ModTime.Equal(time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("mtime = %v", fi.ModTime)
	}
	di, err := back.Stat("/var/empty")
	if err != nil || !di.IsDir() || di.Perm() != 0o700 {
		t.Errorf("dir metadata = %+v, %v", di, err)
	}
	// Package state restored through the embedded dpkg status file.
	db, err := back.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := db.Get("nginx"); !ok || p.Version != "1.10.3" {
		t.Errorf("pkg = %+v ok=%v", p, ok)
	}
}

func TestNewFromTarSkipsSpecials(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	if err := tw.WriteHeader(&tar.Header{Typeflag: tar.TypeSymlink, Name: "etc/link", Linkname: "/etc/target"}); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteHeader(&tar.Header{Typeflag: tar.TypeReg, Name: "etc/real", Size: 2, Mode: 0o644}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := NewFromTar("t", TypeHost, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("/etc/real"); err != nil {
		t.Errorf("real file missing: %v", err)
	}
	if _, err := m.ReadFile("/etc/link"); err == nil {
		t.Error("symlink materialized as a file")
	}
}

func TestNewFromTarBadInput(t *testing.T) {
	if _, err := NewFromTar("x", TypeHost, strings.NewReader("definitely not a tar")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestNewFromTarBadDpkgStatus(t *testing.T) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	content := []byte("not a dpkg stanza\n")
	if err := tw.WriteHeader(&tar.Header{Typeflag: tar.TypeReg, Name: "var/lib/dpkg/status", Size: int64(len(content)), Mode: 0o644}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(content); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromTar("x", TypeHost, &buf); err == nil {
		t.Error("bad dpkg status accepted")
	}
}
