package entity

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"configvalidator/internal/pkgdb"
)

// OSDir exposes a directory on the local filesystem as an Entity, treating
// the directory as the entity's root. This is how the CLI validates a host
// (root "/"), a chroot, or an unpacked image directory. Package state is
// read from var/lib/dpkg/status under the root when present.
type OSDir struct {
	name     string
	typ      Type
	root     string
	features map[string]string
}

var _ Entity = (*OSDir)(nil)

// NewOSDir creates an entity rooted at dir.
func NewOSDir(name string, typ Type, dir string) *OSDir {
	return &OSDir{name: name, typ: typ, root: dir, features: make(map[string]string)}
}

// SetFeature records a runtime plugin output (collected out of band).
func (o *OSDir) SetFeature(name, output string) {
	o.features[name] = output
}

// Name implements Entity.
func (o *OSDir) Name() string { return o.name }

// Type implements Entity.
func (o *OSDir) Type() Type { return o.typ }

func (o *OSDir) hostPath(path string) string {
	return filepath.Join(o.root, filepath.FromSlash(strings.TrimPrefix(Clean(path), "/")))
}

// ReadFile implements Entity.
func (o *OSDir) ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(o.hostPath(path))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, NotExist(path)
	}
	return data, err
}

// Stat implements Entity.
func (o *OSDir) Stat(path string) (FileInfo, error) {
	fi, err := os.Stat(o.hostPath(path))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return FileInfo{}, NotExist(path)
		}
		return FileInfo{}, err
	}
	return osFileInfo(Clean(path), fi), nil
}

func osFileInfo(path string, fi os.FileInfo) FileInfo {
	out := FileInfo{
		Path:    path,
		Size:    fi.Size(),
		Mode:    fi.Mode(),
		ModTime: fi.ModTime(),
	}
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		out.UID = int(st.Uid)
		out.GID = int(st.Gid)
	}
	return out
}

// Walk implements Entity.
func (o *OSDir) Walk(root string, fn func(FileInfo) error) error {
	base := o.hostPath(root)
	var paths []string
	err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) && p == base {
				return NotExist(root)
			}
			return err
		}
		if p != base || !d.IsDir() {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			continue // raced removal; skip
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return err
		}
		if err := fn(osFileInfo(Clean(filepath.ToSlash(rel)), fi)); err != nil {
			return err
		}
	}
	return nil
}

// Packages implements Entity.
func (o *OSDir) Packages() (*pkgdb.DB, error) {
	data, err := o.ReadFile("/var/lib/dpkg/status")
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return pkgdb.New(nil), nil
		}
		return nil, err
	}
	pkgs, err := pkgdb.ParseStatusFile(data)
	if err != nil {
		return nil, fmt.Errorf("parse dpkg status: %w", err)
	}
	return pkgdb.New(pkgs), nil
}

// RunFeature implements Entity.
func (o *OSDir) RunFeature(name string) (string, error) {
	out, ok := o.features[name]
	if !ok {
		return "", NoFeature(name)
	}
	return out, nil
}

// Features implements Entity.
func (o *OSDir) Features() []string {
	out := make([]string, 0, len(o.features))
	for n := range o.features {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
