// Package entity defines the abstraction ConfigValidator validates against.
// Following the paper (§2), an "entity" is an application, host, container,
// Docker image, or cloud runtime. The Entity interface exposes the three
// configuration classes of §2.1: configuration files (ReadFile/Walk), system
// state (Stat metadata, Packages), and custom runtime configuration
// (RunFeature, backed by crawler plugins).
package entity

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"configvalidator/internal/pkgdb"
)

// Type classifies an entity, mirroring the paper's target environments.
type Type int

// Entity types.
const (
	TypeHost Type = iota + 1
	TypeImage
	TypeContainer
	TypeCloud
	TypeFrame
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeHost:
		return "host"
	case TypeImage:
		return "image"
	case TypeContainer:
		return "container"
	case TypeCloud:
		return "cloud"
	case TypeFrame:
		return "frame"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a type name back to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "host":
		return TypeHost, nil
	case "image":
		return TypeImage, nil
	case "container":
		return TypeContainer, nil
	case "cloud":
		return TypeCloud, nil
	case "frame":
		return TypeFrame, nil
	default:
		return 0, fmt.Errorf("entity: unknown type %q", s)
	}
}

// ErrNotExist reports a path absent from the entity.
var ErrNotExist = errors.New("entity: path does not exist")

// ErrNoFeature reports a runtime feature the entity cannot provide.
var ErrNoFeature = errors.New("entity: runtime feature not available")

// wrapErr is fmt.Errorf("%w: %s", sentinel, detail) without the format
// machinery: "no such path" is the most common answer a fleet scan gets
// (most entries' search paths are absent on most images), so constructing
// it must be cheap.
type wrapErr struct {
	sentinel error
	detail   string
}

func (e *wrapErr) Error() string { return e.sentinel.Error() + ": " + e.detail }
func (e *wrapErr) Unwrap() error { return e.sentinel }

// NotExist returns ErrNotExist annotated with the path; the message
// matches what wrapping with fmt.Errorf("%w: %s", ...) would produce.
func NotExist(path string) error { return &wrapErr{sentinel: ErrNotExist, detail: path} }

// NoFeature returns ErrNoFeature annotated with the feature name.
func NoFeature(name string) error { return &wrapErr{sentinel: ErrNoFeature, detail: name} }

// FileInfo is the metadata rule engine path rules assert on (§2.1.2).
type FileInfo struct {
	// Path is the absolute path inside the entity.
	Path string
	// Size is the content length in bytes.
	Size int64
	// Mode carries the permission bits and directory flag.
	Mode fs.FileMode
	// UID and GID are the numeric owner and group.
	UID int
	GID int
	// ModTime is the last modification time.
	ModTime time.Time
}

// IsDir reports whether the path is a directory.
func (fi FileInfo) IsDir() bool { return fi.Mode.IsDir() }

// Perm returns the permission bits as an octal integer (e.g. 0o644).
func (fi FileInfo) Perm() int { return int(fi.Mode.Perm()) }

// Ownership formats owner as "uid:gid", the notation used by CVL path rules.
func (fi FileInfo) Ownership() string { return fmt.Sprintf("%d:%d", fi.UID, fi.GID) }

// Entity is a validation target.
type Entity interface {
	// Name identifies the entity (hostname, image tag, container id, ...).
	Name() string
	// Type reports the entity class.
	Type() Type
	// ReadFile returns the content of the file at path.
	ReadFile(path string) ([]byte, error)
	// Stat returns metadata for the file or directory at path.
	Stat(path string) (FileInfo, error)
	// Walk visits every file under root in lexical order.
	Walk(root string, fn func(FileInfo) error) error
	// Packages returns the installed-software database.
	Packages() (*pkgdb.DB, error)
	// RunFeature executes a named crawler plugin against the entity's
	// runtime state and returns its raw output (paper §2.1.3: custom
	// configurations retrieved by entity-specific commands or APIs).
	RunFeature(name string) (string, error)
	// Features lists the runtime plugins this entity can answer, sorted.
	Features() []string
}

// Mem is an in-memory Entity used by the simulators, the frame reader, and
// tests. The zero value is not usable; construct with NewMem.
type Mem struct {
	name     string
	typ      Type
	files    map[string]*memFile
	dirs     map[string]memDir
	packages []pkgdb.Package
	features map[string]string

	// sorted caches the lexically ordered union of file and directory
	// paths for Walk, rebuilt lazily after a mutation. Concurrent readers
	// may race to build it; they compute identical slices, so last-write-
	// wins is benign. Mutation is not safe concurrently with reads, which
	// is already the Mem contract.
	sorted atomic.Pointer[[]string]
}

type memFile struct {
	data    []byte
	mode    fs.FileMode
	uid     int
	gid     int
	modTime time.Time
}

type memDir struct {
	mode fs.FileMode
	uid  int
	gid  int
}

var _ Entity = (*Mem)(nil)

// NewMem creates an empty in-memory entity.
func NewMem(name string, typ Type) *Mem {
	return &Mem{
		name:     name,
		typ:      typ,
		files:    make(map[string]*memFile),
		dirs:     map[string]memDir{"/": {mode: fs.ModeDir | 0o755}},
		features: make(map[string]string),
	}
}

// FileOption customizes file metadata in AddFile.
type FileOption func(*memFile)

// WithMode sets the permission bits.
func WithMode(mode fs.FileMode) FileOption {
	return func(f *memFile) { f.mode = (f.mode & fs.ModeDir) | mode.Perm() }
}

// WithOwner sets the numeric owner and group.
func WithOwner(uid, gid int) FileOption {
	return func(f *memFile) { f.uid, f.gid = uid, gid }
}

// WithModTime sets the modification time.
func WithModTime(t time.Time) FileOption {
	return func(f *memFile) { f.modTime = t }
}

// AddFile stores a file, creating parent directories as needed. The default
// mode is 0644 root:root.
func (m *Mem) AddFile(path string, data []byte, opts ...FileOption) {
	path = Clean(path)
	f := &memFile{data: data, mode: 0o644}
	for _, o := range opts {
		o(f)
	}
	m.files[path] = f
	m.ensureParents(path)
	m.sorted.Store(nil)
}

// AddDir creates a directory (and parents). Default mode 0755 root:root.
func (m *Mem) AddDir(path string, opts ...FileOption) {
	path = Clean(path)
	f := &memFile{mode: fs.ModeDir | 0o755}
	for _, o := range opts {
		o(f)
	}
	m.dirs[path] = memDir{mode: fs.ModeDir | f.mode.Perm(), uid: f.uid, gid: f.gid}
	m.ensureParents(path)
	m.sorted.Store(nil)
}

// RemoveFile deletes a file if present.
func (m *Mem) RemoveFile(path string) {
	delete(m.files, Clean(path))
	m.sorted.Store(nil)
}

// SetPackages replaces the package list.
func (m *Mem) SetPackages(packages []pkgdb.Package) {
	m.packages = append([]pkgdb.Package(nil), packages...)
}

// AddPackage appends one package.
func (m *Mem) AddPackage(p pkgdb.Package) {
	m.packages = append(m.packages, p)
}

// SetFeature records the output of a runtime crawler plugin.
func (m *Mem) SetFeature(name, output string) {
	m.features[name] = output
}

// Name implements Entity.
func (m *Mem) Name() string { return m.name }

// Type implements Entity.
func (m *Mem) Type() Type { return m.typ }

// ReadFile implements Entity.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	f, ok := m.files[Clean(path)]
	if !ok {
		return nil, NotExist(path)
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Stat implements Entity.
func (m *Mem) Stat(path string) (FileInfo, error) {
	path = Clean(path)
	if f, ok := m.files[path]; ok {
		return FileInfo{
			Path:    path,
			Size:    int64(len(f.data)),
			Mode:    f.mode,
			UID:     f.uid,
			GID:     f.gid,
			ModTime: f.modTime,
		}, nil
	}
	if d, ok := m.dirs[path]; ok {
		return FileInfo{Path: path, Mode: d.mode, UID: d.uid, GID: d.gid}, nil
	}
	return FileInfo{}, NotExist(path)
}

// Walk implements Entity. Directories under root are visited too (their
// FileInfo has IsDir set), so consumers that only care about files must
// skip them; metadata consumers such as the frame writer rely on seeing
// them.
func (m *Mem) Walk(root string, fn func(FileInfo) error) error {
	root = Clean(root)
	if _, ok := m.dirs[root]; !ok {
		if fi, err := m.Stat(root); err == nil {
			return fn(fi)
		}
		return NotExist(root)
	}
	// Everything under root is a contiguous run of the sorted path list
	// (prefix root+"/"), so one binary search finds the start and the
	// scan stops at the first non-descendant — no per-walk filter over
	// the whole namespace, no per-walk sort.
	paths := m.sortedPaths()
	prefix := root + "/"
	start := 0
	if root != "/" {
		start = sort.SearchStrings(paths, prefix)
	} else {
		prefix = "/"
	}
	for _, p := range paths[start:] {
		if !strings.HasPrefix(p, prefix) {
			break
		}
		fi, err := m.Stat(p)
		if err != nil {
			return err
		}
		if err := fn(fi); err != nil {
			return err
		}
	}
	return nil
}

// sortedPaths returns the cached lexical ordering of all file and
// directory paths (the root directory excluded), rebuilding it after a
// mutation.
func (m *Mem) sortedPaths() []string {
	if p := m.sorted.Load(); p != nil {
		return *p
	}
	paths := make([]string, 0, len(m.files)+len(m.dirs))
	for p := range m.files {
		paths = append(paths, p)
	}
	for p := range m.dirs {
		if p != "/" {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	m.sorted.Store(&paths)
	return paths
}

// Packages implements Entity.
func (m *Mem) Packages() (*pkgdb.DB, error) {
	return pkgdb.New(m.packages), nil
}

// RunFeature implements Entity.
func (m *Mem) RunFeature(name string) (string, error) {
	out, ok := m.features[name]
	if !ok {
		return "", NoFeature(name)
	}
	return out, nil
}

// Files returns all file paths in sorted order (used by the frame writer).
func (m *Mem) Files() []string {
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Dirs returns all directory paths in sorted order.
func (m *Mem) Dirs() []string {
	out := make([]string, 0, len(m.dirs))
	for p := range m.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Features returns the names of available runtime features, sorted.
func (m *Mem) Features() []string {
	out := make([]string, 0, len(m.features))
	for n := range m.features {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (m *Mem) ensureParents(path string) {
	for {
		idx := strings.LastIndexByte(path, '/')
		if idx <= 0 {
			break
		}
		path = path[:idx]
		if _, ok := m.dirs[path]; !ok {
			m.dirs[path] = memDir{mode: fs.ModeDir | 0o755}
		}
	}
}

// Clean normalizes an entity path: forward slashes, leading '/', no
// trailing slash, no '.' or empty segments, ".." resolved.
func Clean(path string) string {
	if isClean(path) {
		return path
	}
	segs := strings.Split(path, "/")
	out := make([]string, 0, len(segs))
	for _, s := range segs {
		switch s {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, s)
		}
	}
	return "/" + strings.Join(out, "/")
}

// isClean reports whether path is already in Clean's canonical form (a
// rooted path with no empty, ".", or ".." segments and no trailing slash),
// letting the overwhelmingly common case — paths that were cleaned at
// insertion — skip the split/join allocation on every lookup.
func isClean(path string) bool {
	if path == "/" {
		return true
	}
	if path == "" || path[0] != '/' || path[len(path)-1] == '/' {
		return false
	}
	for i := 0; i < len(path); i++ {
		if path[i] != '/' {
			continue
		}
		j := i + 1
		if path[j] == '/' {
			return false
		}
		if path[j] == '.' {
			if j+1 == len(path) || path[j+1] == '/' {
				return false
			}
			if path[j+1] == '.' && (j+2 == len(path) || path[j+2] == '/') {
				return false
			}
		}
	}
	return true
}
