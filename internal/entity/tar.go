package entity

import (
	"archive/tar"
	"errors"
	"fmt"
	"io"
	"io/fs"

	"configvalidator/internal/pkgdb"
)

// NewFromTar reads a tar archive (e.g. a `docker export` of a container or
// a filesystem snapshot) into an in-memory entity. File modes, ownership,
// and modification times are preserved. When the archive contains a dpkg
// status database at var/lib/dpkg/status, the package list is loaded from
// it automatically.
func NewFromTar(name string, typ Type, r io.Reader) (*Mem, error) {
	m := NewMem(name, typ)
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("entity: read tar: %w", err)
		}
		path := Clean(hdr.Name)
		switch hdr.Typeflag {
		case tar.TypeDir:
			m.AddDir(path,
				WithMode(fileMode(hdr)),
				WithOwner(hdr.Uid, hdr.Gid))
		case tar.TypeReg:
			content, err := io.ReadAll(tr)
			if err != nil {
				return nil, fmt.Errorf("entity: read tar entry %s: %w", hdr.Name, err)
			}
			m.AddFile(path, content,
				WithMode(fileMode(hdr)),
				WithOwner(hdr.Uid, hdr.Gid),
				WithModTime(hdr.ModTime))
		case tar.TypeSymlink, tar.TypeLink:
			// Symlinks are recorded as zero-byte markers; the validation
			// rules in this reproduction assert on regular files.
			continue
		default:
			continue
		}
	}
	if data, err := m.ReadFile("/var/lib/dpkg/status"); err == nil {
		pkgs, err := pkgdb.ParseStatusFile(data)
		if err != nil {
			return nil, fmt.Errorf("entity: dpkg status in tar: %w", err)
		}
		m.SetPackages(pkgs)
	}
	return m, nil
}

// WriteTar serializes the entity's filesystem as a tar archive, the
// inverse of NewFromTar. Package state is embedded as a dpkg status file.
func (m *Mem) WriteTar(w io.Writer) error {
	tw := tar.NewWriter(w)
	for _, dir := range m.Dirs() {
		if dir == "/" {
			continue
		}
		fi, err := m.Stat(dir)
		if err != nil {
			return err
		}
		hdr := &tar.Header{
			Typeflag: tar.TypeDir,
			Name:     dir[1:] + "/",
			Mode:     int64(fi.Mode.Perm()),
			Uid:      fi.UID,
			Gid:      fi.GID,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("entity: write tar dir %s: %w", dir, err)
		}
	}
	writeFile := func(path string, content []byte, fi FileInfo) error {
		hdr := &tar.Header{
			Typeflag: tar.TypeReg,
			Name:     path[1:],
			Size:     int64(len(content)),
			Mode:     int64(fi.Mode.Perm()),
			Uid:      fi.UID,
			Gid:      fi.GID,
			ModTime:  fi.ModTime,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("entity: write tar header %s: %w", path, err)
		}
		if _, err := tw.Write(content); err != nil {
			return fmt.Errorf("entity: write tar content %s: %w", path, err)
		}
		return nil
	}
	wrotePkgDB := false
	for _, path := range m.Files() {
		content, err := m.ReadFile(path)
		if err != nil {
			return err
		}
		fi, err := m.Stat(path)
		if err != nil {
			return err
		}
		if path == "/var/lib/dpkg/status" {
			wrotePkgDB = true
		}
		if err := writeFile(path, content, fi); err != nil {
			return err
		}
	}
	if !wrotePkgDB && len(m.packages) > 0 {
		content := pkgdb.FormatStatusFile(m.packages)
		if err := writeFile("/var/lib/dpkg/status", content, FileInfo{Mode: 0o644}); err != nil {
			return err
		}
	}
	return tw.Close()
}

func fileMode(hdr *tar.Header) fs.FileMode {
	return fs.FileMode(hdr.Mode & 0o7777)
}
