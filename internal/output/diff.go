package output

import (
	"fmt"
	"io"

	"configvalidator/internal/engine"
)

// Drift is the comparison of two reports for the same entity across time —
// the unit of continuous validation: the paper's production system scans
// entities daily, and what operators act on is the change set.
type Drift struct {
	// Regressions are rules that passed before and fail now.
	Regressions []*engine.Result
	// Fixes are rules that failed before and pass now.
	Fixes []*engine.Result
	// Appeared are rules present only in the new report (new rules, or
	// newly applicable ones).
	Appeared []*engine.Result
	// Disappeared are rules present only in the old report.
	Disappeared []*engine.Result
}

// Empty reports whether nothing changed.
func (d *Drift) Empty() bool {
	return len(d.Regressions) == 0 && len(d.Fixes) == 0 &&
		len(d.Appeared) == 0 && len(d.Disappeared) == 0
}

// DiffReports compares two reports result-by-result, keyed by manifest
// entity + rule identity. Config-parse error results (no rule attached)
// participate keyed by file.
func DiffReports(old, new *engine.Report) *Drift {
	oldByKey := indexResults(old)
	newByKey := indexResults(new)
	d := &Drift{}
	for key, nr := range newByKey {
		or, existed := oldByKey[key]
		if !existed {
			d.Appeared = append(d.Appeared, nr)
			continue
		}
		switch {
		case or.Status != engine.StatusFail && nr.Status == engine.StatusFail:
			d.Regressions = append(d.Regressions, nr)
		case or.Status == engine.StatusFail && nr.Status == engine.StatusPass:
			d.Fixes = append(d.Fixes, nr)
		}
	}
	for key, or := range oldByKey {
		if _, exists := newByKey[key]; !exists {
			d.Disappeared = append(d.Disappeared, or)
		}
	}
	sortResults(d.Regressions)
	sortResults(d.Fixes)
	sortResults(d.Appeared)
	sortResults(d.Disappeared)
	return d
}

func indexResults(rep *engine.Report) map[string]*engine.Result {
	out := make(map[string]*engine.Result, len(rep.Results))
	for _, r := range rep.Results {
		key := r.ManifestEntity + "/"
		if r.Rule != nil {
			key += r.Rule.Key()
		} else {
			key += "parse:" + r.File
		}
		out[key] = r
	}
	return out
}

func sortResults(results []*engine.Result) {
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && resultKey(results[j]) < resultKey(results[j-1]); j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
}

func resultKey(r *engine.Result) string {
	name := r.File
	if r.Rule != nil {
		name = r.Rule.Name
	}
	return r.ManifestEntity + "/" + name
}

// WriteDrift renders a drift report.
func WriteDrift(w io.Writer, d *Drift) error {
	if d.Empty() {
		_, err := fmt.Fprintln(w, "No drift: reports are equivalent.")
		return err
	}
	section := func(title string, results []*engine.Result) {
		if len(results) == 0 {
			return
		}
		fmt.Fprintf(w, "%s (%d):\n", title, len(results))
		for _, r := range results {
			name := r.File
			if r.Rule != nil {
				name = r.Rule.Name
			}
			fmt.Fprintf(w, "  %s/%s: %s\n", r.ManifestEntity, name, r.Message)
		}
	}
	section("REGRESSIONS", d.Regressions)
	section("FIXES", d.Fixes)
	section("NEW CHECKS", d.Appeared)
	section("REMOVED CHECKS", d.Disappeared)
	return nil
}
