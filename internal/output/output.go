// Package output implements the Output Processing module of
// ConfigValidator (§3.1): it converts rule-engine results into
// human-readable text and machine-readable JSON, combining each result with
// the rule description, the outcome description, and the suggested
// remediation from the rule specification.
package output

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"configvalidator/internal/engine"
)

// Options control report rendering.
type Options struct {
	// ShowPassing includes PASS results in text output (failures, errors,
	// and N/A always show when Verbose is set).
	ShowPassing bool
	// Verbose includes N/A results and per-result detail lines.
	Verbose bool
	// TagFilter limits output to results whose rule has any of these tags.
	TagFilter []string
}

// WriteText renders the report as a human-readable summary.
func WriteText(w io.Writer, rep *engine.Report, opts Options) error {
	results := filterResults(rep.Results, opts.TagFilter)
	counts := map[engine.Status]int{}
	for _, r := range results {
		counts[r.Status]++
	}
	if _, err := fmt.Fprintf(w, "Entity: %s (%s)\n", rep.EntityName, rep.EntityType); err != nil {
		return err
	}
	fmt.Fprintf(w, "Checks: %d total, %d passed, %d failed, %d not applicable, %d errors, %d degraded\n\n",
		len(results), counts[engine.StatusPass], counts[engine.StatusFail],
		counts[engine.StatusNotApplicable], counts[engine.StatusError],
		counts[engine.StatusDegraded])

	for _, r := range results {
		switch r.Status {
		case engine.StatusPass:
			if !opts.ShowPassing {
				continue
			}
		case engine.StatusNotApplicable:
			if !opts.Verbose {
				continue
			}
		}
		name := "(config parse)"
		if r.Rule != nil {
			name = r.Rule.Name
		}
		fmt.Fprintf(w, "[%s] %s/%s: %s\n", r.Status, r.ManifestEntity, name, r.Message)
		if opts.Verbose && r.Detail != "" {
			fmt.Fprintf(w, "        detail: %s\n", r.Detail)
		}
		if r.File != "" && (opts.Verbose || r.Status == engine.StatusFail) {
			fmt.Fprintf(w, "        file: %s\n", r.File)
		}
		if r.Status == engine.StatusFail && r.Rule != nil && r.Rule.SuggestedAction != "" {
			fmt.Fprintf(w, "        action: %s\n", r.Rule.SuggestedAction)
		}
	}
	return nil
}

// jsonResult is the JSON shape of one result.
type jsonResult struct {
	Entity          string   `json:"entity"`
	ManifestEntity  string   `json:"manifest_entity"`
	Rule            string   `json:"rule,omitempty"`
	RuleType        string   `json:"rule_type,omitempty"`
	Status          string   `json:"status"`
	Message         string   `json:"message"`
	Detail          string   `json:"detail,omitempty"`
	File            string   `json:"file,omitempty"`
	Tags            []string `json:"tags,omitempty"`
	Severity        string   `json:"severity,omitempty"`
	SuggestedAction string   `json:"suggested_action,omitempty"`
}

// jsonReport is the JSON shape of a full report.
type jsonReport struct {
	Entity     string         `json:"entity"`
	EntityType string         `json:"entity_type"`
	Summary    map[string]int `json:"summary"`
	Results    []jsonResult   `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *engine.Report, opts Options) error {
	results := filterResults(rep.Results, opts.TagFilter)
	out := jsonReport{
		Entity:     rep.EntityName,
		EntityType: rep.EntityType,
		Summary:    make(map[string]int, 4),
		Results:    make([]jsonResult, 0, len(results)),
	}
	for _, r := range results {
		out.Summary[strings.ToLower(r.Status.String())]++
		jr := jsonResult{
			Entity:         r.EntityName,
			ManifestEntity: r.ManifestEntity,
			Status:         r.Status.String(),
			Message:        r.Message,
			Detail:         r.Detail,
			File:           r.File,
		}
		if r.Rule != nil {
			jr.Rule = r.Rule.Name
			jr.RuleType = r.Rule.Type.String()
			jr.Tags = r.Rule.Tags
			jr.Severity = r.Rule.Severity
			jr.SuggestedAction = r.Rule.SuggestedAction
		}
		out.Results = append(out.Results, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ComplianceSummary aggregates pass/fail counts per compliance tag prefix
// (e.g. "#cis", "#owasp") across one or more reports.
func ComplianceSummary(reports []*engine.Report) map[string]TagStats {
	out := make(map[string]TagStats)
	for _, rep := range reports {
		for _, r := range rep.Results {
			if r.Rule == nil {
				continue
			}
			for _, tag := range r.Rule.Tags {
				stats := out[tag]
				stats.Total++
				switch r.Status {
				case engine.StatusPass:
					stats.Passed++
				case engine.StatusFail:
					stats.Failed++
				}
				out[tag] = stats
			}
		}
	}
	return out
}

// TagStats counts outcomes for one tag.
type TagStats struct {
	Total  int
	Passed int
	Failed int
}

// WriteComplianceSummary renders a per-tag table sorted by tag.
func WriteComplianceSummary(w io.Writer, reports []*engine.Report) error {
	stats := ComplianceSummary(reports)
	tags := make([]string, 0, len(stats))
	for t := range stats {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	if _, err := fmt.Fprintf(w, "%-32s %8s %8s %8s\n", "TAG", "TOTAL", "PASS", "FAIL"); err != nil {
		return err
	}
	for _, t := range tags {
		s := stats[t]
		fmt.Fprintf(w, "%-32s %8d %8d %8d\n", t, s.Total, s.Passed, s.Failed)
	}
	return nil
}

func filterResults(results []*engine.Result, tags []string) []*engine.Result {
	if len(tags) == 0 {
		return results
	}
	out := make([]*engine.Result, 0, len(results))
	for _, r := range results {
		if r.Rule == nil {
			out = append(out, r)
			continue
		}
		for _, t := range tags {
			if r.Rule.HasTag(t) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
