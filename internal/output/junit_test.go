package output

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestWriteJUnit(t *testing.T) {
	var b strings.Builder
	if err := WriteJUnit(&b, sampleReport(), Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, xml.Header) {
		t.Error("missing XML header")
	}
	var decoded junitTestsuites
	if err := xml.Unmarshal([]byte(strings.TrimPrefix(out, xml.Header)), &decoded); err != nil {
		t.Fatalf("invalid XML: %v\n%s", err, out)
	}
	if decoded.Name != "web-01" || decoded.Tests != 4 || decoded.Failures != 1 || decoded.Errors != 1 || decoded.Skipped != 1 {
		t.Errorf("totals = %+v", decoded)
	}
	// One suite per manifest entity (sshd, nginx, mysql).
	if len(decoded.Suites) != 3 {
		t.Fatalf("suites = %d", len(decoded.Suites))
	}
	var nginx *junitTestsuite
	for i := range decoded.Suites {
		if decoded.Suites[i].Name == "nginx" {
			nginx = &decoded.Suites[i]
		}
	}
	if nginx == nil || nginx.Failures != 1 || nginx.Errors != 1 {
		t.Fatalf("nginx suite = %+v", nginx)
	}
	var failCase *junitTestcase
	for i := range nginx.Cases {
		if nginx.Cases[i].Failure != nil {
			failCase = &nginx.Cases[i]
		}
	}
	if failCase == nil || failCase.Name != "ssl_protocols" {
		t.Fatalf("failure case = %+v", failCase)
	}
	if failCase.Failure.Message != "Non-recommended TLS ver." {
		t.Errorf("failure message = %q", failCase.Failure.Message)
	}
	if !strings.Contains(failCase.Failure.Body, "/etc/nginx/nginx.conf") {
		t.Errorf("failure body = %q", failCase.Failure.Body)
	}
}

func TestWriteJUnitTagFilter(t *testing.T) {
	var b strings.Builder
	if err := WriteJUnit(&b, sampleReport(), Options{TagFilter: []string{"#cis"}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "ssl_protocols") {
		t.Error("tag filter leaked owasp rule into junit output")
	}
	if !strings.Contains(b.String(), "PermitRootLogin") {
		t.Error("cis rule missing from junit output")
	}
}
