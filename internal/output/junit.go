package output

import (
	"encoding/xml"
	"fmt"
	"io"

	"configvalidator/internal/engine"
)

// junitTestsuite is the JUnit XML shape CI systems ingest. Each manifest
// entity becomes a test suite and each rule a test case, so validation
// findings surface in the same dashboards as unit-test failures —
// continuous compliance in the CI pipeline.
type junitTestsuites struct {
	XMLName  xml.Name         `xml:"testsuites"`
	Name     string           `xml:"name,attr"`
	Tests    int              `xml:"tests,attr"`
	Failures int              `xml:"failures,attr"`
	Errors   int              `xml:"errors,attr"`
	Skipped  int              `xml:"skipped,attr"`
	Suites   []junitTestsuite `xml:"testsuite"`
}

type junitTestsuite struct {
	Name     string          `xml:"name,attr"`
	Tests    int             `xml:"tests,attr"`
	Failures int             `xml:"failures,attr"`
	Errors   int             `xml:"errors,attr"`
	Skipped  int             `xml:"skipped,attr"`
	Cases    []junitTestcase `xml:"testcase"`
}

type junitTestcase struct {
	Name      string        `xml:"name,attr"`
	Classname string        `xml:"classname,attr"`
	Failure   *junitMessage `xml:"failure,omitempty"`
	Error     *junitMessage `xml:"error,omitempty"`
	Skipped   *junitMessage `xml:"skipped,omitempty"`
}

type junitMessage struct {
	Message string `xml:"message,attr"`
	Body    string `xml:",chardata"`
}

// WriteJUnit renders the report as JUnit XML: PASS → passing case, FAIL →
// failure, ERROR → error, N/A → skipped.
func WriteJUnit(w io.Writer, rep *engine.Report, opts Options) error {
	results := filterResults(rep.Results, opts.TagFilter)
	bySuite := make(map[string][]*engine.Result)
	var order []string
	for _, r := range results {
		if _, seen := bySuite[r.ManifestEntity]; !seen {
			order = append(order, r.ManifestEntity)
		}
		bySuite[r.ManifestEntity] = append(bySuite[r.ManifestEntity], r)
	}
	out := junitTestsuites{Name: rep.EntityName}
	for _, suiteName := range order {
		suite := junitTestsuite{Name: suiteName}
		for _, r := range bySuite[suiteName] {
			name := "(config parse)"
			if r.Rule != nil {
				name = r.Rule.Name
			}
			tc := junitTestcase{
				Name:      name,
				Classname: rep.EntityName + "." + suiteName,
			}
			msg := &junitMessage{Message: r.Message, Body: r.Detail}
			if r.File != "" {
				msg.Body = fmt.Sprintf("%s (file: %s)", r.Detail, r.File)
			}
			switch r.Status {
			case engine.StatusFail:
				tc.Failure = msg
				suite.Failures++
			case engine.StatusError, engine.StatusDegraded:
				tc.Error = msg
				suite.Errors++
			case engine.StatusNotApplicable:
				tc.Skipped = msg
				suite.Skipped++
			}
			suite.Tests++
			suite.Cases = append(suite.Cases, tc)
		}
		out.Tests += suite.Tests
		out.Failures += suite.Failures
		out.Errors += suite.Errors
		out.Skipped += suite.Skipped
		out.Suites = append(out.Suites, suite)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("output: junit: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}
