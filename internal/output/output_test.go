package output

import (
	"encoding/json"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
)

func sampleReport() *engine.Report {
	return &engine.Report{
		EntityName: "web-01",
		EntityType: "host",
		Results: []*engine.Result{
			{
				EntityName: "web-01", ManifestEntity: "sshd",
				Rule:    &cvl.Rule{Name: "PermitRootLogin", Type: cvl.TypeTree, Tags: []string{"#cis"}},
				Status:  engine.StatusPass,
				Message: "Root login is disabled.",
				File:    "/etc/ssh/sshd_config",
			},
			{
				EntityName: "web-01", ManifestEntity: "nginx",
				Rule: &cvl.Rule{
					Name: "ssl_protocols", Type: cvl.TypeTree,
					Tags:            []string{"#owasp", "#ssl"},
					Severity:        "high",
					SuggestedAction: "set ssl_protocols to TLSv1.2 TLSv1.3",
				},
				Status:  engine.StatusFail,
				Message: "Non-recommended TLS ver.",
				Detail:  `value "SSLv3" matches a non-preferred value`,
				File:    "/etc/nginx/nginx.conf",
			},
			{
				EntityName: "web-01", ManifestEntity: "mysql",
				Rule:    &cvl.Rule{Name: "ssl", Type: cvl.TypeScript, Tags: []string{"#owasp"}},
				Status:  engine.StatusNotApplicable,
				Message: "ssl not applicable",
				Detail:  "feature unavailable",
			},
			{
				EntityName: "web-01", ManifestEntity: "nginx",
				Status:  engine.StatusError,
				Message: "lens nginx: /etc/nginx/broken.conf:3: unbalanced '}'",
				File:    "/etc/nginx/broken.conf",
			},
		},
	}
}

func TestWriteTextDefault(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleReport(), Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Entity: web-01 (host)",
		"4 total, 1 passed, 1 failed, 1 not applicable, 1 errors",
		"[FAIL] nginx/ssl_protocols: Non-recommended TLS ver.",
		"action: set ssl_protocols to TLSv1.2 TLSv1.3",
		"file: /etc/nginx/nginx.conf",
		"[ERROR] nginx/(config parse)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// PASS and N/A hidden by default.
	if strings.Contains(out, "[PASS]") || strings.Contains(out, "[N/A]") {
		t.Errorf("default output should hide PASS and N/A:\n%s", out)
	}
}

func TestWriteTextVerbose(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleReport(), Options{ShowPassing: true, Verbose: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"[PASS] sshd/PermitRootLogin", "[N/A] mysql/ssl", "detail: value \"SSLv3\""} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextTagFilter(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, sampleReport(), Options{ShowPassing: true, TagFilter: []string{"#cis"}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "PermitRootLogin") {
		t.Errorf("cis rule missing:\n%s", out)
	}
	if strings.Contains(out, "ssl_protocols") {
		t.Errorf("owasp rule should be filtered:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sampleReport(), Options{}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Entity     string         `json:"entity"`
		EntityType string         `json:"entity_type"`
		Summary    map[string]int `json:"summary"`
		Results    []struct {
			Rule            string   `json:"rule"`
			RuleType        string   `json:"rule_type"`
			Status          string   `json:"status"`
			Tags            []string `json:"tags"`
			Severity        string   `json:"severity"`
			SuggestedAction string   `json:"suggested_action"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if decoded.Entity != "web-01" || decoded.EntityType != "host" {
		t.Errorf("header = %+v", decoded)
	}
	if decoded.Summary["pass"] != 1 || decoded.Summary["fail"] != 1 || decoded.Summary["n/a"] != 1 || decoded.Summary["error"] != 1 {
		t.Errorf("summary = %v", decoded.Summary)
	}
	if len(decoded.Results) != 4 {
		t.Fatalf("results = %d", len(decoded.Results))
	}
	fail := decoded.Results[1]
	if fail.Rule != "ssl_protocols" || fail.RuleType != "config_tree" || fail.Severity != "high" {
		t.Errorf("fail result = %+v", fail)
	}
	if len(fail.Tags) != 2 || fail.SuggestedAction == "" {
		t.Errorf("fail metadata = %+v", fail)
	}
}

func TestComplianceSummary(t *testing.T) {
	stats := ComplianceSummary([]*engine.Report{sampleReport()})
	cis := stats["#cis"]
	if cis.Total != 1 || cis.Passed != 1 || cis.Failed != 0 {
		t.Errorf("#cis = %+v", cis)
	}
	owasp := stats["#owasp"]
	if owasp.Total != 2 || owasp.Failed != 1 {
		t.Errorf("#owasp = %+v", owasp)
	}
	var b strings.Builder
	if err := WriteComplianceSummary(&b, []*engine.Report{sampleReport()}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "#cis") || !strings.Contains(out, "TAG") {
		t.Errorf("summary table:\n%s", out)
	}
	// Sorted output: #cis before #owasp.
	if strings.Index(out, "#cis") > strings.Index(out, "#owasp") {
		t.Errorf("tags not sorted:\n%s", out)
	}
}
