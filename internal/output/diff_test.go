package output

import (
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
)

func result(entity, rule string, status engine.Status) *engine.Result {
	return &engine.Result{
		ManifestEntity: entity,
		Rule:           &cvl.Rule{Type: cvl.TypeTree, Name: rule},
		Status:         status,
		Message:        rule + " message",
	}
}

func TestDiffReportsClassification(t *testing.T) {
	old := &engine.Report{Results: []*engine.Result{
		result("sshd", "PermitRootLogin", engine.StatusPass),
		result("sshd", "Protocol", engine.StatusFail),
		result("sshd", "Removed", engine.StatusPass),
		result("nginx", "user", engine.StatusFail),
	}}
	newer := &engine.Report{Results: []*engine.Result{
		result("sshd", "PermitRootLogin", engine.StatusFail), // regression
		result("sshd", "Protocol", engine.StatusPass),        // fix
		result("nginx", "user", engine.StatusFail),           // unchanged
		result("nginx", "added", engine.StatusPass),          // appeared
	}}
	d := DiffReports(old, newer)
	if len(d.Regressions) != 1 || d.Regressions[0].Rule.Name != "PermitRootLogin" {
		t.Errorf("regressions = %+v", d.Regressions)
	}
	if len(d.Fixes) != 1 || d.Fixes[0].Rule.Name != "Protocol" {
		t.Errorf("fixes = %+v", d.Fixes)
	}
	if len(d.Appeared) != 1 || d.Appeared[0].Rule.Name != "added" {
		t.Errorf("appeared = %+v", d.Appeared)
	}
	if len(d.Disappeared) != 1 || d.Disappeared[0].Rule.Name != "Removed" {
		t.Errorf("disappeared = %+v", d.Disappeared)
	}
	if d.Empty() {
		t.Error("non-empty drift reported empty")
	}
}

func TestDiffNAToFailIsRegression(t *testing.T) {
	old := &engine.Report{Results: []*engine.Result{result("mysql", "ssl", engine.StatusNotApplicable)}}
	newer := &engine.Report{Results: []*engine.Result{result("mysql", "ssl", engine.StatusFail)}}
	d := DiffReports(old, newer)
	if len(d.Regressions) != 1 {
		t.Errorf("N/A -> FAIL should be a regression: %+v", d)
	}
}

func TestDiffIdenticalReportsEmpty(t *testing.T) {
	rep := &engine.Report{Results: []*engine.Result{
		result("sshd", "a", engine.StatusPass),
		result("sshd", "b", engine.StatusFail),
	}}
	d := DiffReports(rep, rep)
	if !d.Empty() {
		t.Errorf("self-diff = %+v", d)
	}
	var b strings.Builder
	if err := WriteDrift(&b, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "No drift") {
		t.Errorf("output = %q", b.String())
	}
}

func TestDiffParseErrorResults(t *testing.T) {
	parseErr := &engine.Result{ManifestEntity: "nginx", Status: engine.StatusError, File: "/etc/nginx/broken.conf", Message: "parse failed"}
	old := &engine.Report{Results: []*engine.Result{}}
	newer := &engine.Report{Results: []*engine.Result{parseErr}}
	d := DiffReports(old, newer)
	if len(d.Appeared) != 1 {
		t.Errorf("parse error not tracked: %+v", d)
	}
}

func TestWriteDriftSections(t *testing.T) {
	old := &engine.Report{Results: []*engine.Result{result("sshd", "x", engine.StatusPass)}}
	newer := &engine.Report{Results: []*engine.Result{result("sshd", "x", engine.StatusFail)}}
	var b strings.Builder
	if err := WriteDrift(&b, DiffReports(old, newer)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "REGRESSIONS (1):") || !strings.Contains(out, "sshd/x") {
		t.Errorf("output:\n%s", out)
	}
}

func TestDriftSorted(t *testing.T) {
	old := &engine.Report{}
	newer := &engine.Report{Results: []*engine.Result{
		result("z", "z", engine.StatusPass),
		result("a", "a", engine.StatusPass),
		result("m", "m", engine.StatusPass),
	}}
	d := DiffReports(old, newer)
	if len(d.Appeared) != 3 || d.Appeared[0].ManifestEntity != "a" || d.Appeared[2].ManifestEntity != "z" {
		t.Errorf("not sorted: %+v", d.Appeared)
	}
}
