package schema

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// fstabTable builds a table shaped like a parsed /etc/fstab.
func fstabTable(t *testing.T) *Table {
	t.Helper()
	tbl := New("/etc/fstab", "device", "dir", "fstype", "options", "dump", "pass")
	rows := [][]string{
		{"/dev/sda1", "/", "ext4", "errors=remount-ro", "0", "1"},
		{"/dev/sda2", "/tmp", "ext4", "nodev,nosuid,noexec", "0", "2"},
		{"/dev/sda3", "/var", "ext4", "defaults", "0", "2"},
		{"tmpfs", "/dev/shm", "tmpfs", "nodev,nosuid", "0", "0"},
	}
	for _, r := range rows {
		if err := tbl.AddRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func mustSelect(t *testing.T, tbl *Table, q Query) *Table {
	t.Helper()
	out, err := tbl.Select(q)
	if err != nil {
		t.Fatalf("Select(%+v): %v", q, err)
	}
	return out
}

func TestSelectAll(t *testing.T) {
	tbl := fstabTable(t)
	out := mustSelect(t, tbl, Query{})
	if out.Len() != 4 || len(out.Columns) != 6 {
		t.Errorf("select all: %d rows, %d cols", out.Len(), len(out.Columns))
	}
}

func TestSelectWithPlaceholder(t *testing.T) {
	tbl := fstabTable(t)
	// The paper's Listing 3: check if /tmp is on a separate partition.
	out := mustSelect(t, tbl, Query{
		Columns:     []string{"*"},
		Constraints: "dir = ?",
		Args:        []string{"/tmp"},
	})
	if out.Len() != 1 || out.Rows[0][0] != "/dev/sda2" {
		t.Errorf("dir=/tmp rows: %v", out.Rows)
	}
}

func TestSelectProjection(t *testing.T) {
	tbl := fstabTable(t)
	out := mustSelect(t, tbl, Query{Columns: []string{"dir", "fstype"}})
	if !reflect.DeepEqual(out.Columns, []string{"dir", "fstype"}) {
		t.Errorf("columns = %v", out.Columns)
	}
	if out.Rows[0][0] != "/" || out.Rows[0][1] != "ext4" {
		t.Errorf("row 0 = %v", out.Rows[0])
	}
}

func TestSelectOperators(t *testing.T) {
	tbl := fstabTable(t)
	tests := []struct {
		name        string
		constraints string
		args        []string
		wantRows    int
	}{
		{"equality", "fstype = ext4", nil, 3},
		{"inequality", "fstype != ext4", nil, 1},
		{"numeric lt", "pass < 2", nil, 2},
		{"numeric le", "pass <= 2", nil, 4},
		{"numeric gt", "pass > 0", nil, 3},
		{"numeric ge", "pass >= 2", nil, 2},
		{"like prefix", "device LIKE /dev/%", nil, 3},
		{"like contains", "options LIKE %nosuid%", nil, 2},
		{"like underscore", "device LIKE /dev/sda_", nil, 3},
		{"in list", "dir IN (/tmp, /var)", nil, 2},
		{"in with placeholders", "dir IN (?, ?)", []string{"/", "/tmp"}, 2},
		{"and", "fstype = ext4 AND pass = 2", nil, 2},
		{"or", "dir = / OR dir = /tmp", nil, 2},
		{"not", "NOT fstype = ext4", nil, 1},
		{"parens", "(dir = / OR dir = /tmp) AND fstype = ext4", nil, 2},
		{"precedence and-over-or", "dir = / OR dir = /tmp AND fstype = tmpfs", nil, 1},
		{"quoted value", `dir = '/tmp'`, nil, 1},
		{"double quoted", `dir = "/tmp"`, nil, 1},
		{"case-insensitive keywords", "dir = / or dir = /tmp", nil, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := mustSelect(t, tbl, Query{Constraints: tt.constraints, Args: tt.args})
			if out.Len() != tt.wantRows {
				t.Errorf("%q matched %d rows, want %d\n%s", tt.constraints, out.Len(), tt.wantRows, out)
			}
		})
	}
}

func TestSelectNumericVsLexicographic(t *testing.T) {
	tbl := New("t", "v")
	for _, v := range []string{"9", "10", "100"} {
		if err := tbl.AddRow(v); err != nil {
			t.Fatal(err)
		}
	}
	// Numeric comparison: 9 < 10 < 100.
	out := mustSelect(t, tbl, Query{Constraints: "v < 100"})
	if out.Len() != 2 {
		t.Errorf("numeric compare matched %d rows", out.Len())
	}
	// Mixed: non-numeric falls back to string compare.
	tbl2 := New("t2", "v")
	_ = tbl2.AddRow("abc")
	_ = tbl2.AddRow("abd")
	out2 := mustSelect(t, tbl2, Query{Constraints: "v < abd"})
	if out2.Len() != 1 {
		t.Errorf("string compare matched %d rows", out2.Len())
	}
}

func TestSelectErrors(t *testing.T) {
	tbl := fstabTable(t)
	tests := []struct {
		name string
		q    Query
	}{
		{"unknown column in constraint", Query{Constraints: "bogus = 1"}},
		{"unknown column in projection", Query{Columns: []string{"bogus"}}},
		{"missing placeholder value", Query{Constraints: "dir = ?"}},
		{"too many placeholder values", Query{Constraints: "dir = ?", Args: []string{"/", "/tmp"}}},
		{"dangling operator", Query{Constraints: "dir ="}},
		{"bad operator", Query{Constraints: "dir ~ x"}},
		{"unterminated paren", Query{Constraints: "(dir = /"}},
		{"unterminated quote", Query{Constraints: "dir = '/tmp"}},
		{"trailing garbage", Query{Constraints: "dir = / banana"}},
		{"IN without parens", Query{Constraints: "dir IN /tmp"}},
		{"unterminated IN list", Query{Constraints: "dir IN (/tmp"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tbl.Select(tt.q); err == nil {
				t.Errorf("Select(%+v) succeeded, want error", tt.q)
			}
		})
	}
}

func TestAddRowPadding(t *testing.T) {
	tbl := New("t", "a", "b", "c")
	if err := tbl.AddRow("1"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl.Rows[0], []string{"1", "", ""}) {
		t.Errorf("padded row = %v", tbl.Rows[0])
	}
	if err := tbl.AddRow("1", "2", "3", "4"); err == nil {
		t.Error("over-long row accepted")
	}
}

func TestColumn(t *testing.T) {
	tbl := fstabTable(t)
	dirs, err := tbl.Column("dir")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dirs, []string{"/", "/tmp", "/var", "/dev/shm"}) {
		t.Errorf("dirs = %v", dirs)
	}
	if _, err := tbl.Column("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%c", "abbbc", true},
		{"a%c", "ac", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%suid%", "nodev,nosuid", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, tt := range tests {
		if got := matchLike(tt.pattern, tt.s); got != tt.want {
			t.Errorf("matchLike(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

// TestQuickSelectAgainstNaive cross-checks the constraint engine against a
// naive row filter for randomly generated tables and simple constraints.
func TestQuickSelectAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	for i := 0; i < 300; i++ {
		tbl := New("t", "x", "y")
		n := r.Intn(12)
		for j := 0; j < n; j++ {
			if err := tbl.AddRow(strconv.Itoa(r.Intn(5)), strconv.Itoa(r.Intn(5))); err != nil {
				t.Fatal(err)
			}
		}
		op := ops[r.Intn(len(ops))]
		val := strconv.Itoa(r.Intn(5))
		col := []string{"x", "y"}[r.Intn(2)]
		out, err := tbl.Select(Query{Constraints: col + " " + op + " ?", Args: []string{val}})
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		want := 0
		ci, _ := tbl.ColumnIndex(col)
		for _, row := range tbl.Rows {
			a, _ := strconv.Atoi(row[ci])
			b, _ := strconv.Atoi(val)
			match := false
			switch op {
			case "=":
				match = a == b
			case "!=":
				match = a != b
			case "<":
				match = a < b
			case "<=":
				match = a <= b
			case ">":
				match = a > b
			case ">=":
				match = a >= b
			}
			if match {
				want++
			}
		}
		if out.Len() != want {
			t.Fatalf("iteration %d: %s %s %s matched %d, naive %d", i, col, op, val, out.Len(), want)
		}
	}
}

// TestQuickAndOrDuality checks De Morgan-style consistency: rows matching
// "A AND B" plus rows matching "NOT (A AND B)" partition the table.
func TestQuickAndOrDuality(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		tbl := New("t", "x", "y")
		n := 1 + r.Intn(10)
		for j := 0; j < n; j++ {
			_ = tbl.AddRow(strconv.Itoa(r.Intn(3)), strconv.Itoa(r.Intn(3)))
		}
		a := "x = " + strconv.Itoa(r.Intn(3))
		b := "y = " + strconv.Itoa(r.Intn(3))
		both := a + " AND " + b
		pos, err := tbl.Select(Query{Constraints: both})
		if err != nil {
			t.Fatal(err)
		}
		neg, err := tbl.Select(Query{Constraints: "NOT (" + both + ")"})
		if err != nil {
			t.Fatal(err)
		}
		if pos.Len()+neg.Len() != tbl.Len() {
			t.Fatalf("partition broken: %d + %d != %d", pos.Len(), neg.Len(), tbl.Len())
		}
	}
}

func TestTableString(t *testing.T) {
	tbl := New("t", "a", "b")
	_ = tbl.AddRow("1", "2")
	s := tbl.String()
	if !strings.Contains(s, "t (a, b)") || !strings.Contains(s, "1 | 2") {
		t.Errorf("String() = %q", s)
	}
}
