package schema

import "fmt"

// Atom is one column comparison inside a constraint expression, exposed
// for static analysis: the semantic rule checker (internal/analysis/sem)
// lowers conjunctions of atoms into per-column abstract domains.
type Atom struct {
	// Column is the constrained column name.
	Column string
	// Op is one of =, !=, <, <=, >, >=, LIKE, IN.
	Op string
	// Values are the comparison operands (one element except for IN),
	// with '?' placeholders already substituted from the args list.
	Values []string
}

// ConjunctiveAtoms parses a constraint expression and, when it is a pure
// conjunction of column comparisons (no OR, no NOT), returns its atoms in
// order. The boolean result reports whether the expression had that
// shape; expressions with disjunction or negation parse fine but return
// (nil, false, nil) because they cannot be decomposed column-by-column.
func ConjunctiveAtoms(constraints string, args []string) ([]Atom, bool, error) {
	p := &constraintParser{input: constraints, args: args}
	expr, err := p.parse()
	if err != nil {
		return nil, false, fmt.Errorf("schema: %w", err)
	}
	if p.argPos < len(args) {
		return nil, false, fmt.Errorf("schema: %d placeholder values supplied, %d used", len(args), p.argPos)
	}
	var atoms []Atom
	if !collectAtoms(expr, &atoms) {
		return nil, false, nil
	}
	return atoms, true, nil
}

// collectAtoms flattens an AND tree of comparisons; it reports false on
// any OR or NOT node.
func collectAtoms(e boolExpr, out *[]Atom) bool {
	switch v := e.(type) {
	case *comparison:
		*out = append(*out, Atom{Column: v.column, Op: v.op, Values: append([]string(nil), v.values...)})
		return true
	case *binaryBool:
		if v.op != "AND" {
			return false
		}
		return collectAtoms(v.left, out) && collectAtoms(v.right, out)
	default:
		return false
	}
}
