// Package schema defines the SQL-table-like structure that the data
// normalizer produces for "schema pattern" configuration files — files such
// as /etc/passwd, /etc/fstab, or /etc/audit/audit.rules where each line is a
// row whose fields have positional meaning.
//
// CVL schema rules query these tables through a small constraint language
// mirroring the paper's examples:
//
//	query_constraints: "dir = ?"
//	query_constraints_value: ["/tmp"]
//	query_columns: "*"
//
// Constraints support =, !=, <, <=, >, >=, LIKE (with % wildcards), and IN,
// combined with AND/OR and parentheses. Values compare numerically when both
// sides parse as numbers, lexicographically otherwise.
package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a named relation with ordered columns and rows.
type Table struct {
	// Name identifies the table, typically the source file path.
	Name string
	// Columns are the field names in positional order.
	Columns []string
	// Rows hold the data; each row has len(Columns) fields.
	Rows [][]string
	// File is the source file, when known.
	File string
}

// New creates an empty table with the given columns.
func New(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: append([]string(nil), columns...)}
}

// AddRow appends a row. Short rows are padded with empty fields; long rows
// are an error.
func (t *Table) AddRow(fields ...string) error {
	if len(fields) > len(t.Columns) {
		return fmt.Errorf("schema: table %s: row has %d fields, columns are %d", t.Name, len(fields), len(t.Columns))
	}
	row := make([]string, len(t.Columns))
	copy(row, fields)
	t.Rows = append(t.Rows, row)
	return nil
}

// ColumnIndex returns the position of the named column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	for i, c := range t.Columns {
		if c == name {
			return i, true
		}
	}
	return -1, false
}

// Column returns all values of the named column.
func (t *Table) Column(name string) ([]string, error) {
	idx, ok := t.ColumnIndex(name)
	if !ok {
		return nil, fmt.Errorf("schema: table %s has no column %q", t.Name, name)
	}
	out := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out, nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Query describes a selection over a table.
type Query struct {
	// Columns is the projection: nil, empty, or ["*"] selects all columns.
	Columns []string
	// Constraints is the filter expression, e.g. "dir = ? AND fstype != ?".
	// Empty selects all rows.
	Constraints string
	// Args provide values for the '?' placeholders, in order.
	Args []string
}

// Select evaluates the query and returns a new table with the matching rows
// and projected columns.
func (t *Table) Select(q Query) (*Table, error) {
	var expr boolExpr
	if strings.TrimSpace(q.Constraints) != "" {
		p := &constraintParser{input: q.Constraints, args: q.Args}
		var err error
		expr, err = p.parse()
		if err != nil {
			return nil, fmt.Errorf("schema: table %s: %w", t.Name, err)
		}
		if p.argPos < len(q.Args) {
			return nil, fmt.Errorf("schema: table %s: %d placeholder values supplied, %d used", t.Name, len(q.Args), p.argPos)
		}
	}

	projIdx, projCols, err := t.projection(q.Columns)
	if err != nil {
		return nil, err
	}
	out := &Table{Name: t.Name, Columns: projCols, File: t.File}
	for _, row := range t.Rows {
		if expr != nil {
			ok, evalErr := expr.eval(t, row)
			if evalErr != nil {
				return nil, fmt.Errorf("schema: table %s: %w", t.Name, evalErr)
			}
			if !ok {
				continue
			}
		}
		proj := make([]string, len(projIdx))
		for i, ci := range projIdx {
			proj[i] = row[ci]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

func (t *Table) projection(cols []string) ([]int, []string, error) {
	if len(cols) == 0 || (len(cols) == 1 && cols[0] == "*") {
		idx := make([]int, len(t.Columns))
		for i := range idx {
			idx[i] = i
		}
		return idx, append([]string(nil), t.Columns...), nil
	}
	idx := make([]int, 0, len(cols))
	names := make([]string, 0, len(cols))
	for _, c := range cols {
		i, ok := t.ColumnIndex(c)
		if !ok {
			return nil, nil, fmt.Errorf("schema: table %s has no column %q", t.Name, c)
		}
		idx = append(idx, i)
		names = append(names, c)
	}
	return idx, names, nil
}

// String renders the table for debugging.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Name)
	b.WriteString(" (")
	b.WriteString(strings.Join(t.Columns, ", "))
	b.WriteString(")\n")
	for _, r := range t.Rows {
		b.WriteString("  ")
		b.WriteString(strings.Join(r, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}

// boolExpr is a parsed constraint expression.
type boolExpr interface {
	eval(t *Table, row []string) (bool, error)
}

type binaryBool struct {
	op    string // "AND" or "OR"
	left  boolExpr
	right boolExpr
}

func (b *binaryBool) eval(t *Table, row []string) (bool, error) {
	l, err := b.left.eval(t, row)
	if err != nil {
		return false, err
	}
	if b.op == "AND" && !l {
		return false, nil
	}
	if b.op == "OR" && l {
		return true, nil
	}
	return b.right.eval(t, row)
}

type notExpr struct{ inner boolExpr }

func (n *notExpr) eval(t *Table, row []string) (bool, error) {
	v, err := n.inner.eval(t, row)
	return !v, err
}

type comparison struct {
	column string
	op     string // =, !=, <, <=, >, >=, LIKE, IN
	values []string
}

func (c *comparison) eval(t *Table, row []string) (bool, error) {
	idx, ok := t.ColumnIndex(c.column)
	if !ok {
		return false, fmt.Errorf("no column %q", c.column)
	}
	cell := row[idx]
	switch c.op {
	case "=":
		return compareValues(cell, c.values[0]) == 0, nil
	case "!=":
		return compareValues(cell, c.values[0]) != 0, nil
	case "<":
		return compareValues(cell, c.values[0]) < 0, nil
	case "<=":
		return compareValues(cell, c.values[0]) <= 0, nil
	case ">":
		return compareValues(cell, c.values[0]) > 0, nil
	case ">=":
		return compareValues(cell, c.values[0]) >= 0, nil
	case "LIKE":
		return matchLike(c.values[0], cell), nil
	case "IN":
		for _, v := range c.values {
			if compareValues(cell, v) == 0 {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("unsupported operator %q", c.op)
	}
}

// compareValues compares numerically when both values parse as numbers,
// lexicographically otherwise.
func compareValues(a, b string) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// matchLike implements SQL LIKE with % (any run) and _ (single char).
func matchLike(pattern, s string) bool {
	return likeMatch(pattern, s)
}

func likeMatch(p, s string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeMatch(p[1:], s[i:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeMatch(p[1:], s[1:])
	default:
		return len(s) > 0 && s[0] == p[0] && likeMatch(p[1:], s[1:])
	}
}

// constraintParser parses the constraint mini-language.
type constraintParser struct {
	input  string
	pos    int
	args   []string
	argPos int
}

func (p *constraintParser) parse() (boolExpr, error) {
	expr, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("constraint: unexpected input at %q", p.input[p.pos:])
	}
	return expr, nil
}

func (p *constraintParser) parseOr() (boolExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.consumeKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryBool{op: "OR", left: left, right: right}
	}
	return left, nil
}

func (p *constraintParser) parseAnd() (boolExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.consumeKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryBool{op: "AND", left: left, right: right}
	}
	return left, nil
}

func (p *constraintParser) parseUnary() (boolExpr, error) {
	if p.consumeKeyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner: inner}, nil
	}
	p.skipSpace()
	if p.pos < len(p.input) && p.input[p.pos] == '(' {
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.input) || p.input[p.pos] != ')' {
			return nil, fmt.Errorf("constraint: missing ')'")
		}
		p.pos++
		return inner, nil
	}
	return p.parseComparison()
}

func (p *constraintParser) parseComparison() (boolExpr, error) {
	col, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	op, err := p.parseOperator()
	if err != nil {
		return nil, err
	}
	if op == "IN" {
		vals, err := p.parseInList()
		if err != nil {
			return nil, err
		}
		return &comparison{column: col, op: op, values: vals}, nil
	}
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return &comparison{column: col, op: op, values: []string{val}}, nil
}

func (p *constraintParser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == '_' || c == '.' || c == '-' || c == '/' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("constraint: expected column name at %q", p.input[start:])
	}
	return p.input[start:p.pos], nil
}

func (p *constraintParser) parseOperator() (string, error) {
	p.skipSpace()
	rest := p.input[p.pos:]
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if strings.HasPrefix(rest, op) {
			p.pos += len(op)
			return op, nil
		}
	}
	upper := strings.ToUpper(rest)
	for _, kw := range []string{"LIKE", "IN"} {
		if strings.HasPrefix(upper, kw) && (len(rest) == len(kw) || rest[len(kw)] == ' ' || rest[len(kw)] == '(') {
			p.pos += len(kw)
			return kw, nil
		}
	}
	return "", fmt.Errorf("constraint: expected operator at %q", rest)
}

func (p *constraintParser) parseValue() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return "", fmt.Errorf("constraint: expected value at end of input")
	}
	switch c := p.input[p.pos]; c {
	case '?':
		p.pos++
		if p.argPos >= len(p.args) {
			return "", fmt.Errorf("constraint: not enough placeholder values (need more than %d)", len(p.args))
		}
		v := p.args[p.argPos]
		p.argPos++
		return v, nil
	case '\'', '"':
		end := strings.IndexByte(p.input[p.pos+1:], c)
		if end < 0 {
			return "", fmt.Errorf("constraint: unterminated quoted value")
		}
		v := p.input[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return v, nil
	default:
		start := p.pos
		for p.pos < len(p.input) {
			ch := p.input[p.pos]
			if ch == ' ' || ch == ')' || ch == ',' {
				break
			}
			p.pos++
		}
		if p.pos == start {
			return "", fmt.Errorf("constraint: expected value at %q", p.input[start:])
		}
		return p.input[start:p.pos], nil
	}
}

func (p *constraintParser) parseInList() ([]string, error) {
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != '(' {
		return nil, fmt.Errorf("constraint: IN requires a parenthesized list")
	}
	p.pos++
	var vals []string
	for {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		p.skipSpace()
		if p.pos >= len(p.input) {
			return nil, fmt.Errorf("constraint: unterminated IN list")
		}
		switch p.input[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return vals, nil
		default:
			return nil, fmt.Errorf("constraint: expected ',' or ')' in IN list at %q", p.input[p.pos:])
		}
	}
}

// consumeKeyword consumes kw (case-insensitive, word-bounded) when present.
func (p *constraintParser) consumeKeyword(kw string) bool {
	p.skipSpace()
	if p.pos+len(kw) > len(p.input) {
		return false
	}
	if !strings.EqualFold(p.input[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.input) {
		c := p.input[end]
		if c != ' ' && c != '(' {
			return false
		}
	}
	p.pos = end
	return true
}

func (p *constraintParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}
