package schema

import (
	"strconv"
	"testing"
)

func benchTable(rows int) *Table {
	t := New("bench", "device", "dir", "fstype", "options", "dump", "pass")
	for i := 0; i < rows; i++ {
		_ = t.AddRow("/dev/sda"+strconv.Itoa(i), "/mnt/"+strconv.Itoa(i), "ext4", "defaults", "0", "2")
	}
	return t
}

func BenchmarkSelectEquality(b *testing.B) {
	t := benchTable(100)
	q := Query{Constraints: "dir = ?", Args: []string{"/mnt/50"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := t.Select(q)
		if err != nil || out.Len() != 1 {
			b.Fatal(out, err)
		}
	}
}

func BenchmarkSelectCompound(b *testing.B) {
	t := benchTable(100)
	q := Query{Constraints: "(fstype = ext4 AND pass >= 2) OR dir LIKE %99", Columns: []string{"dir", "options"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t.Select(q); err != nil {
			b.Fatal(err)
		}
	}
}
