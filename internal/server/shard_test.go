package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/dist"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
	"configvalidator/internal/journal"
)

// shardServer builds a worker-configured Server behind httptest.
func shardServer(t *testing.T, journalDir string, delay time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	v, err := configvalidator.New(configvalidator.WithTelemetry(configvalidator.NewCollector()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(v)
	if err != nil {
		t.Fatal(err)
	}
	s.ShardJournalDir = journalDir
	s.ShardScanDelay = delay
	s.ShardWorkers = 1
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

// shardBody packs n fixture images into a shard request body, returning
// the body and the entity names in feed order. Digests are synthetic —
// the endpoint only echoes them.
func shardBody(t *testing.T, n int) (*bytes.Buffer, []string) {
	t.Helper()
	var body bytes.Buffer
	names := make([]string, 0, n)
	enc := json.NewEncoder(&body)
	for i := 0; i < n; i++ {
		img, _ := fixtures.Image(fmt.Sprintf("shard-img-%d", i), "v1", fixtures.Profile{Seed: int64(40 + i), MisconfigRate: 0.5})
		ent := img.Entity()
		frame, err := frames.Capture(ent, nil, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
		if err != nil {
			t.Fatal(err)
		}
		var fb bytes.Buffer
		if err := frame.Write(&fb); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(dist.EntityRecord{Name: ent.Name(), Digest: fmt.Sprintf("dg-%d", i), Frame: fb.Bytes()}); err != nil {
			t.Fatal(err)
		}
		names = append(names, ent.Name())
	}
	return &body, names
}

// readStream consumes a shard response stream into typed records.
func readStream(t *testing.T, r io.Reader) []dist.StreamRecord {
	t.Helper()
	var recs []dist.StreamRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		var rec dist.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestShardScanStreamsResults(t *testing.T) {
	_, srv := shardServer(t, "", 30*time.Millisecond)
	body, names := shardBody(t, 3)
	resp, err := http.Post(srv.URL+"/v1/shard/scan?shard=s0000&heartbeat=10ms", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s, want 200", resp.Status)
	}
	recs := readStream(t, resp.Body)
	results := map[string]dist.StreamRecord{}
	heartbeats, dones := 0, 0
	var done dist.StreamRecord
	for _, rec := range recs {
		switch rec.Type {
		case dist.TypeHeartbeat:
			heartbeats++
		case dist.TypeResult:
			results[rec.Entity] = rec
		case dist.TypeDone:
			dones++
			done = rec
		}
	}
	if len(results) != 3 || dones != 1 {
		t.Fatalf("got %d results, %d done trailers; want 3 and 1", len(results), dones)
	}
	if heartbeats == 0 {
		t.Error("no heartbeats on a paced stream; the lease watchdog would starve")
	}
	if done.Scanned != 3 {
		t.Errorf("done.Scanned = %d, want 3", done.Scanned)
	}
	for i, name := range names {
		rec, ok := results[name]
		if !ok {
			t.Fatalf("missing result for %s", name)
		}
		if rec.Err != "" || rec.Report == nil {
			t.Fatalf("result %s: err=%q report=%v", name, rec.Err, rec.Report != nil)
		}
		if want := fmt.Sprintf("dg-%d", i); rec.Digest != want {
			t.Errorf("result %s digest = %q, want echoed %q", name, rec.Digest, want)
		}
	}
}

// tornTail appends a truncated record — the on-disk state a SIGKILL
// mid-append leaves — to a journal segment (format per TestFormatPinned).
func tornTail(t *testing.T, path string) {
	t.Helper()
	payload := []byte(`{"entity":"torn","digest":"dead"}`)
	var rec bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	rec.Write(hdr[:])
	rec.Write(payload)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec.Bytes()[:rec.Len()-5]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardScanResumesFromSegment is the worker-side half of
// journal-backed reassignment: a lease cut off mid-shard (the coordinator
// revoking, or dying) leaves completed results in the shard's journal
// segment — with a torn tail, as a kill mid-append would. The re-leased
// shard must replay those results (resumed=true) instead of re-scanning,
// after recovery truncates the torn tail.
func TestShardScanResumesFromSegment(t *testing.T) {
	dir := t.TempDir()
	_, srv := shardServer(t, dir, 120*time.Millisecond)
	body, names := shardBody(t, 3)
	payload := body.Bytes()

	// Lease 1: read up to the first result, then revoke (drop the
	// connection by cancelling the request).
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/shard/scan?shard=res1&heartbeat=10ms", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s, want 200", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	sawFirst := false
	for sc.Scan() {
		var rec dist.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == dist.TypeResult {
			if rec.Entity != names[0] {
				t.Fatalf("first serial result = %s, want %s", rec.Entity, names[0])
			}
			sawFirst = true
			break
		}
	}
	if !sawFirst {
		t.Fatal("stream ended before first result")
	}
	cancel()
	_ = resp.Body.Close()

	// Wait for the revoked request to release the segment's flock, then
	// wound the tail the way a worker SIGKILL mid-append would.
	segPath := filepath.Join(dir, "res1.cvj")
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := journal.Open(segPath, journal.Options{})
		if err == nil {
			_ = j.Close()
			break
		}
		if !errors.Is(err, journal.ErrBusy) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("segment flock never released after revocation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tornTail(t, segPath)

	// Lease 2: same shard, same body. The completed first entity must
	// replay from the segment; the rest scan fresh.
	resp2, err := http.Post(srv.URL+"/v1/shard/scan?shard=res1&heartbeat=10ms", "application/x-ndjson", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-lease status = %s, want 200", resp2.Status)
	}
	results := map[string]dist.StreamRecord{}
	sawDone := false
	for _, rec := range readStream(t, resp2.Body) {
		switch rec.Type {
		case dist.TypeResult:
			results[rec.Entity] = rec
		case dist.TypeDone:
			sawDone = true
		}
	}
	if !sawDone || len(results) != 3 {
		t.Fatalf("re-lease: %d results, done=%v; want 3 and true", len(results), sawDone)
	}
	if !results[names[0]].Resumed {
		t.Errorf("entity %s re-scanned; want replay from journal segment", names[0])
	}
	for _, name := range names {
		if rec := results[name]; rec.Err != "" || rec.Report == nil {
			t.Errorf("re-lease result %s: err=%q report=%v", name, rec.Err, rec.Report != nil)
		}
	}
}

// TestShardScanSegmentBusyConflict pins the lease-fencing behavior: while
// another handle owns a shard's journal segment (a previous lease still
// tearing down), a new lease for that shard gets 409 + Retry-After, and
// succeeds once the segment is released — never two writers on one
// segment.
func TestShardScanSegmentBusyConflict(t *testing.T) {
	dir := t.TempDir()
	_, srv := shardServer(t, dir, 0)
	body, _ := shardBody(t, 1)
	payload := body.Bytes()

	holder, err := journal.Open(filepath.Join(dir, "busy1.cvj"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/shard/scan?shard=busy1", "application/x-ndjson", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status with held segment = %s, want 409", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("409 without Retry-After; coordinators would not back off")
	}
	if err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(srv.URL+"/v1/shard/scan?shard=busy1", "application/x-ndjson", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %s, want 200", resp2.Status)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
}

func TestShardScanRejectsBadInput(t *testing.T) {
	_, srv := shardServer(t, "", 0)
	cases := []struct {
		name string
		url  string
		body string
	}{
		{"empty shard", "/v1/shard/scan", ""},
		{"garbage line", "/v1/shard/scan", "not-json\n"},
		{"bad frame", "/v1/shard/scan", `{"name":"x","frame":"aGk="}` + "\n"},
		{"bad shard id", "/v1/shard/scan?shard=../../etc", `{"name":"x","frame":""}` + "\n"},
		{"bad heartbeat", "/v1/shard/scan?heartbeat=soon", ""},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+tc.url, "application/x-ndjson", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %s, want 400", tc.name, resp.Status)
		}
	}
}
