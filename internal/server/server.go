// Package server exposes ConfigValidator as an HTTP service — the shape of
// the paper's production deployment, where validation runs as part of a
// cloud service (IBM Vulnerability Advisor) rather than on the scanned
// hosts. Clients capture a configuration frame locally (touchless, no
// agent) and POST it for validation.
//
// API:
//
//	GET  /healthz                 liveness
//	GET  /metrics                 Prometheus-style runtime metrics
//	GET  /v1/targets              built-in target list (Table 1)
//	GET  /v1/rules/{target}       the target's CVL rule file
//	POST /v1/validate/frame       validate a frame stream → JSON report
//	POST /v1/validate/tar         validate a docker-export tar → JSON report
//	POST /v1/lint                 lint a CVL rule file → diagnostics
//
// Upload bodies are bounded (MaxFrameBytes for frames and tars,
// MaxLintBytes for lint input); oversized bodies are rejected with
// HTTP 413 rather than silently truncated.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/analysis"
	"configvalidator/internal/entity"
	"configvalidator/internal/frames"
	"configvalidator/internal/rules"
	"configvalidator/internal/telemetry"
)

// MaxFrameBytes bounds accepted frame and tar uploads. Bodies over the
// limit get HTTP 413.
const MaxFrameBytes = 256 << 20

// MaxLintBytes bounds accepted lint uploads.
const MaxLintBytes = 8 << 20

// Server handles validation requests.
type Server struct {
	validator *configvalidator.Validator
	metrics   *telemetry.Collector

	// MaxUploadBytes bounds frame and tar bodies; New sets it to
	// MaxFrameBytes. Operators may lower it before Handler is called.
	MaxUploadBytes int64
}

// New creates a server backed by the built-in rule library, or by the
// supplied validator when non-nil. A nil validator is built with a fresh
// telemetry collector; a supplied validator's collector (WithTelemetry)
// is reused, so scan metrics and HTTP metrics land in one place. Either
// way /metrics is live — with an un-instrumented custom validator it
// reports HTTP traffic only.
func New(v *configvalidator.Validator) (*Server, error) {
	if v == nil {
		var err error
		v, err = configvalidator.New(configvalidator.WithTelemetry(configvalidator.NewCollector()))
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	m := v.Telemetry()
	if m == nil {
		m = telemetry.NewCollector()
	}
	return &Server{validator: v, metrics: m, MaxUploadBytes: MaxFrameBytes}, nil
}

// Metrics returns the server's telemetry collector.
func (s *Server) Metrics() *telemetry.Collector { return s.metrics }

// Handler returns the HTTP routes, each wrapped in per-request
// instrumentation (request count and latency by route and status code,
// exposed at /metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/targets", s.handleTargets)
	handle("GET /v1/rules/{target}", s.handleRules)
	handle("POST /v1/validate/frame", s.handleValidateFrame)
	handle("POST /v1/validate/tar", s.handleValidateTar)
	handle("POST /v1/lint", s.handleLint)
	return mux
}

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency recording
// under the route pattern it was registered with.
func (s *Server) instrument(pattern string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.metrics.RequestDone(pattern, rec.code, time.Since(start))
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

type targetInfo struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Standard string `json:"standard"`
	Rules    int    `json:"rules"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	all, err := rules.All()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "load rules: %v", err)
		return
	}
	out := make([]targetInfo, 0, len(rules.Targets()))
	for _, t := range rules.Targets() {
		out = append(out, targetInfo{
			Name:     t.Name,
			Category: t.Category,
			Standard: t.Standard,
			Rules:    len(all[t.Name]),
		})
	}
	writeJSON(w, map[string]any{"targets": out})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	var ruleFile string
	for _, t := range rules.Targets() {
		if t.Name == target {
			ruleFile = t.RuleFile
		}
	}
	if ruleFile == "" {
		httpError(w, http.StatusNotFound, "unknown target %q", target)
		return
	}
	content, err := rules.Reader()(ruleFile)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "read rules: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/yaml")
	_, _ = w.Write(content)
}

// boundedBody caps the request body at limit bytes. Exceeding it makes
// reads fail with *http.MaxBytesError, which rejectOversize maps to 413 —
// unlike the io.LimitReader this replaces, which silently truncated the
// stream and let a partial frame or tar validate "clean".
func boundedBody(w http.ResponseWriter, r *http.Request, limit int64) io.Reader {
	return http.MaxBytesReader(w, r.Body, limit)
}

// rejectOversize writes 413 and reports true when err was caused by the
// body exceeding its limit.
func rejectOversize(w http.ResponseWriter, err error, limit int64) bool {
	var tooLarge *http.MaxBytesError
	if !errors.As(err, &tooLarge) {
		return false
	}
	httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", limit)
	return true
}

func (s *Server) handleValidateFrame(w http.ResponseWriter, r *http.Request) {
	frame, err := frames.Read(boundedBody(w, r, s.MaxUploadBytes))
	if err != nil {
		if rejectOversize(w, err, s.MaxUploadBytes) {
			return
		}
		httpError(w, http.StatusBadRequest, "bad frame: %v", err)
		return
	}
	s.validateEntity(w, r, frame.Entity())
}

// handleValidateTar accepts a tar archive (a docker export) and validates
// it as a container filesystem. The entity name comes from ?name=.
func (s *Server) handleValidateTar(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "uploaded-tar"
	}
	ent, err := entity.NewFromTar(name, entity.TypeContainer, boundedBody(w, r, s.MaxUploadBytes))
	if err != nil {
		if rejectOversize(w, err, s.MaxUploadBytes) {
			return
		}
		httpError(w, http.StatusBadRequest, "bad tar: %v", err)
		return
	}
	s.validateEntity(w, r, ent)
}

func (s *Server) validateEntity(w http.ResponseWriter, r *http.Request, ent configvalidator.Entity) {
	var report *configvalidator.Report
	var err error
	if target := r.URL.Query().Get("target"); target != "" {
		report, err = s.validator.ValidateTarget(ent, target)
	} else {
		report, err = s.validator.Validate(ent)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "validate: %v", err)
		return
	}
	opts := configvalidator.OutputOptions{}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		opts.TagFilter = strings.Split(tags, ",")
	}
	w.Header().Set("Content-Type", "application/json")
	if err := configvalidator.WriteJSON(w, report, opts); err != nil {
		// Headers already sent; nothing safe to do but log-level surface.
		return
	}
}

// lintResponse carries structured findings. Each finding has stable
// fields {code, severity, file, line, col, rule, msg}; the text field
// holds the rendered one-line form for clients that only display it.
type lintResponse struct {
	Errors   int                       `json:"errors"`
	Warnings int                       `json:"warnings"`
	Findings []analysis.JSONDiagnostic `json:"findings"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	content, err := io.ReadAll(boundedBody(w, r, MaxLintBytes))
	if err != nil {
		if rejectOversize(w, err, MaxLintBytes) {
			return
		}
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// Single-file analysis: unresolved parent_cvl_file references are
	// warnings here, since the request body has no surrounding project.
	result := analysis.AnalyzeFile("request.yaml", content)
	resp := lintResponse{Findings: make([]analysis.JSONDiagnostic, 0, len(result.Diagnostics))}
	resp.Errors, resp.Warnings = result.Counts()
	for _, d := range result.Diagnostics {
		resp.Findings = append(resp.Findings, d.JSON())
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
