// Package server exposes ConfigValidator as an HTTP service — the shape of
// the paper's production deployment, where validation runs as part of a
// cloud service (IBM Vulnerability Advisor) rather than on the scanned
// hosts. Clients capture a configuration frame locally (touchless, no
// agent) and POST it for validation.
//
// API:
//
//	GET  /healthz                 liveness
//	GET  /v1/targets              built-in target list (Table 1)
//	GET  /v1/rules/{target}       the target's CVL rule file
//	POST /v1/validate/frame       validate a frame stream → JSON report
//	POST /v1/validate/tar         validate a docker-export tar → JSON report
//	POST /v1/lint                 lint a CVL rule file → diagnostics
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	configvalidator "configvalidator"
	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
	"configvalidator/internal/frames"
	"configvalidator/internal/rules"
)

// MaxFrameBytes bounds accepted frame uploads.
const MaxFrameBytes = 256 << 20

// Server handles validation requests.
type Server struct {
	validator *configvalidator.Validator
}

// New creates a server backed by the built-in rule library, or by the
// supplied validator when non-nil.
func New(v *configvalidator.Validator) (*Server, error) {
	if v == nil {
		var err error
		v, err = configvalidator.New()
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	return &Server{validator: v}, nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/targets", s.handleTargets)
	mux.HandleFunc("GET /v1/rules/{target}", s.handleRules)
	mux.HandleFunc("POST /v1/validate/frame", s.handleValidateFrame)
	mux.HandleFunc("POST /v1/validate/tar", s.handleValidateTar)
	mux.HandleFunc("POST /v1/lint", s.handleLint)
	return mux
}

type targetInfo struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Standard string `json:"standard"`
	Rules    int    `json:"rules"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	all, err := rules.All()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "load rules: %v", err)
		return
	}
	out := make([]targetInfo, 0, len(rules.Targets()))
	for _, t := range rules.Targets() {
		out = append(out, targetInfo{
			Name:     t.Name,
			Category: t.Category,
			Standard: t.Standard,
			Rules:    len(all[t.Name]),
		})
	}
	writeJSON(w, map[string]any{"targets": out})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	var ruleFile string
	for _, t := range rules.Targets() {
		if t.Name == target {
			ruleFile = t.RuleFile
		}
	}
	if ruleFile == "" {
		httpError(w, http.StatusNotFound, "unknown target %q", target)
		return
	}
	content, err := rules.Reader()(ruleFile)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "read rules: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/yaml")
	_, _ = w.Write(content)
}

func (s *Server) handleValidateFrame(w http.ResponseWriter, r *http.Request) {
	frame, err := frames.Read(io.LimitReader(r.Body, MaxFrameBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad frame: %v", err)
		return
	}
	s.validateEntity(w, r, frame.Entity())
}

// handleValidateTar accepts a tar archive (a docker export) and validates
// it as a container filesystem. The entity name comes from ?name=.
func (s *Server) handleValidateTar(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "uploaded-tar"
	}
	ent, err := entity.NewFromTar(name, entity.TypeContainer, io.LimitReader(r.Body, MaxFrameBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad tar: %v", err)
		return
	}
	s.validateEntity(w, r, ent)
}

func (s *Server) validateEntity(w http.ResponseWriter, r *http.Request, ent configvalidator.Entity) {
	var report *configvalidator.Report
	var err error
	if target := r.URL.Query().Get("target"); target != "" {
		report, err = s.validator.ValidateTarget(ent, target)
	} else {
		report, err = s.validator.Validate(ent)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "validate: %v", err)
		return
	}
	opts := configvalidator.OutputOptions{}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		opts.TagFilter = strings.Split(tags, ",")
	}
	w.Header().Set("Content-Type", "application/json")
	if err := configvalidator.WriteJSON(w, report, opts); err != nil {
		// Headers already sent; nothing safe to do but log-level surface.
		return
	}
}

type lintResponse struct {
	Errors   int      `json:"errors"`
	Warnings int      `json:"warnings"`
	Findings []string `json:"findings"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	content, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	diags := cvl.Lint("request.yaml", content)
	resp := lintResponse{Findings: make([]string, 0, len(diags))}
	for _, d := range diags {
		resp.Findings = append(resp.Findings, d.String())
		if d.Level == cvl.LintError {
			resp.Errors++
		} else {
			resp.Warnings++
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
