// Package server exposes ConfigValidator as an HTTP service — the shape of
// the paper's production deployment, where validation runs as part of a
// cloud service (IBM Vulnerability Advisor) rather than on the scanned
// hosts. Clients capture a configuration frame locally (touchless, no
// agent) and POST it for validation.
//
// API:
//
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness (breaker + drain + queue state)
//	GET  /metrics                 Prometheus-style runtime metrics
//	GET  /v1/targets              built-in target list (Table 1)
//	GET  /v1/rules/{target}       the target's CVL rule file
//	POST /v1/validate/frame       validate a frame stream → JSON report
//	POST /v1/validate/tar         validate a docker-export tar → JSON report
//	POST /v1/shard/scan           scan a shard of shipped frames → result stream
//	POST /v1/lint                 lint a CVL rule file → diagnostics
//
// Upload bodies are bounded (MaxFrameBytes for frames and tars,
// MaxLintBytes for lint input); oversized bodies are rejected with
// HTTP 413 rather than silently truncated.
//
// Validation routes sit behind overload protection (see Limits): a
// bounded in-flight limit with a bounded wait queue (excess requests are
// shed with 429 and Retry-After), a per-request timeout, and a circuit
// breaker that opens after consecutive server-side validation failures
// (503 until its cooldown). /readyz reports 503 while the breaker is open
// or the server is draining, so load balancers rotate the instance out
// before clients see errors.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/analysis"
	"configvalidator/internal/entity"
	"configvalidator/internal/frames"
	"configvalidator/internal/rules"
	"configvalidator/internal/telemetry"
)

// MaxFrameBytes bounds accepted frame and tar uploads. Bodies over the
// limit get HTTP 413.
const MaxFrameBytes = 256 << 20

// MaxLintBytes bounds accepted lint uploads.
const MaxLintBytes = 8 << 20

// Server handles validation requests.
type Server struct {
	validator *configvalidator.Validator
	metrics   *telemetry.Collector

	// MaxUploadBytes bounds frame and tar bodies; New sets it to
	// MaxFrameBytes. Operators may lower it before Handler is called.
	MaxUploadBytes int64

	// Limits tune overload protection on the validation routes; New sets
	// defaults (see Limits). Operators may adjust them before Handler is
	// called; later changes are ignored.
	Limits Limits

	// ShardWorkers is the per-shard scan concurrency for /v1/shard/scan;
	// 0 means GOMAXPROCS (see FleetOptions.Workers).
	ShardWorkers int

	// ShardJournalDir, when set, gives each shard scan a durable journal
	// segment (<dir>/<shard-id>.cvj): a re-leased shard replays the results
	// this worker already completed instead of re-scanning them. Empty
	// disables worker-side resume.
	ShardJournalDir string

	// ShardScanDelay stalls each shard entity before it is scanned — a
	// pacing knob for chaos drills and CI smokes that need to kill a worker
	// deterministically mid-shard. Zero (the default, and the production
	// setting) adds nothing.
	ShardScanDelay time.Duration

	initOnce sync.Once
	lim      *limiter
	brk      *breaker
	draining atomic.Bool

	// testGate, when set by tests before Handler, blocks each admitted
	// validation request until a receive succeeds — the seam that makes
	// overload tests deterministic (hold N slots, assert the N+1st sheds).
	testGate chan struct{}
}

// New creates a server backed by the built-in rule library, or by the
// supplied validator when non-nil. A nil validator is built with a fresh
// telemetry collector; a supplied validator's collector (WithTelemetry)
// is reused, so scan metrics and HTTP metrics land in one place. Either
// way /metrics is live — with an un-instrumented custom validator it
// reports HTTP traffic only.
func New(v *configvalidator.Validator) (*Server, error) {
	if v == nil {
		var err error
		v, err = configvalidator.New(configvalidator.WithTelemetry(configvalidator.NewCollector()))
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	m := v.Telemetry()
	if m == nil {
		m = telemetry.NewCollector()
	}
	return &Server{validator: v, metrics: m, MaxUploadBytes: MaxFrameBytes}, nil
}

// initAdmission freezes s.Limits and builds the admission gate and circuit
// breaker; called once from Handler.
func (s *Server) initAdmission() {
	s.initOnce.Do(func() {
		s.Limits = s.Limits.withDefaults()
		s.lim = newLimiter(s.Limits, s.metrics)
		s.brk = newBreaker(s.Limits, s.metrics)
	})
}

// Metrics returns the server's telemetry collector.
func (s *Server) Metrics() *telemetry.Collector { return s.metrics }

// Handler returns the HTTP routes, each wrapped in per-request
// instrumentation (request count and latency by route and status code,
// exposed at /metrics).
func (s *Server) Handler() http.Handler {
	s.initAdmission()
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	// Validation routes additionally pass the admission gate and run under
	// the per-request timeout; everything else stays cheap and ungated.
	guarded := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern,
			s.admit(http.TimeoutHandler(h, s.Limits.ValidateTimeout, "validation timed out\n"))))
	}
	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	handle("GET /readyz", s.handleReadyz)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/targets", s.handleTargets)
	handle("GET /v1/rules/{target}", s.handleRules)
	guarded("POST /v1/validate/frame", s.handleValidateFrame)
	guarded("POST /v1/validate/tar", s.handleValidateTar)
	// Shard scans stream heartbeats and incremental results, which
	// http.TimeoutHandler would buffer into silence — so they pass the
	// admission gate (drain, breaker, in-flight limit, 429 shedding) but
	// not the per-request timeout. Their lifetime is bounded by the
	// coordinator's lease watchdog instead: a silent stream is revoked at
	// the lease TTL by dropping the connection, which cancels the request
	// context and stops the scan.
	mux.Handle("POST /v1/shard/scan", s.instrument("POST /v1/shard/scan",
		s.admit(http.HandlerFunc(s.handleShardScan))))
	handle("POST /v1/lint", s.handleLint)
	return mux
}

// admit gates a validation route: reject while draining, shed with 429 +
// Retry-After when the in-flight limit and queue are saturated, and
// reject with 503 while the circuit breaker is open. Admitted requests
// hold an execution slot for their whole lifetime, which is what
// BeginDrain waits on.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", retryAfter(s.Limits.BreakerCooldown))
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if !s.brk.allow() {
			w.Header().Set("Retry-After", retryAfter(s.Limits.BreakerCooldown))
			httpError(w, http.StatusServiceUnavailable, "validation circuit breaker open")
			return
		}
		if !s.lim.acquire(r.Context()) {
			s.metrics.RequestShed()
			w.Header().Set("Retry-After", retryAfter(s.Limits.QueueWait))
			httpError(w, http.StatusTooManyRequests, "validation capacity exhausted, retry later")
			return
		}
		defer s.lim.release()
		if s.testGate != nil {
			<-s.testGate
		}
		next.ServeHTTP(w, r)
	})
}

// BeginDrain stops admitting validation requests (503 with Retry-After)
// and waits for the in-flight ones to finish, or for ctx to expire.
// Callers then shut the HTTP listener down; see cmd/cvserver.
func (s *Server) BeginDrain(ctx context.Context) error {
	s.initAdmission()
	s.draining.Store(true)
	for i := 0; i < cap(s.lim.slots); i++ {
		select {
		case s.lim.slots <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %w", ctx.Err())
		}
	}
	return nil
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleReadyz reports readiness: 503 while the circuit breaker is open
// or the server is draining, 200 otherwise — distinct from /healthz,
// which only answers "the process is up". The body carries the gate state
// for operators.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	breakerOpen := s.brk.isOpen()
	draining := s.draining.Load()
	ready := !breakerOpen && !draining
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"ready":        ready,
		"breaker_open": breakerOpen,
		"draining":     draining,
		"in_flight":    len(s.lim.slots),
		"queued":       s.lim.queued.Load(),
	})
}

// statusRecorder captures the response code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer, so streaming routes (shard scans)
// stay flushable under instrumentation.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request counting and latency recording
// under the route pattern it was registered with.
func (s *Server) instrument(pattern string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.metrics.RequestDone(pattern, rec.code, time.Since(start))
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

type targetInfo struct {
	Name     string `json:"name"`
	Category string `json:"category"`
	Standard string `json:"standard"`
	Rules    int    `json:"rules"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	all, err := rules.All()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "load rules: %v", err)
		return
	}
	out := make([]targetInfo, 0, len(rules.Targets()))
	for _, t := range rules.Targets() {
		out = append(out, targetInfo{
			Name:     t.Name,
			Category: t.Category,
			Standard: t.Standard,
			Rules:    len(all[t.Name]),
		})
	}
	writeJSON(w, map[string]any{"targets": out})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	target := r.PathValue("target")
	var ruleFile string
	for _, t := range rules.Targets() {
		if t.Name == target {
			ruleFile = t.RuleFile
		}
	}
	if ruleFile == "" {
		httpError(w, http.StatusNotFound, "unknown target %q", target)
		return
	}
	content, err := rules.Reader()(ruleFile)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "read rules: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/yaml")
	_, _ = w.Write(content)
}

// boundedBody caps the request body at limit bytes. Exceeding it makes
// reads fail with *http.MaxBytesError, which rejectOversize maps to 413 —
// unlike the io.LimitReader this replaces, which silently truncated the
// stream and let a partial frame or tar validate "clean".
func boundedBody(w http.ResponseWriter, r *http.Request, limit int64) io.Reader {
	return http.MaxBytesReader(w, r.Body, limit)
}

// rejectOversize writes 413 and reports true when err was caused by the
// body exceeding its limit.
func rejectOversize(w http.ResponseWriter, err error, limit int64) bool {
	var tooLarge *http.MaxBytesError
	if !errors.As(err, &tooLarge) {
		return false
	}
	httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", limit)
	return true
}

func (s *Server) handleValidateFrame(w http.ResponseWriter, r *http.Request) {
	frame, err := frames.Read(boundedBody(w, r, s.MaxUploadBytes))
	if err != nil {
		if rejectOversize(w, err, s.MaxUploadBytes) {
			return
		}
		httpError(w, http.StatusBadRequest, "bad frame: %v", err)
		return
	}
	s.validateEntity(w, r, frame.Entity())
}

// handleValidateTar accepts a tar archive (a docker export) and validates
// it as a container filesystem. The entity name comes from ?name=.
func (s *Server) handleValidateTar(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "uploaded-tar"
	}
	ent, err := entity.NewFromTar(name, entity.TypeContainer, boundedBody(w, r, s.MaxUploadBytes))
	if err != nil {
		if rejectOversize(w, err, s.MaxUploadBytes) {
			return
		}
		httpError(w, http.StatusBadRequest, "bad tar: %v", err)
		return
	}
	s.validateEntity(w, r, ent)
}

func (s *Server) validateEntity(w http.ResponseWriter, r *http.Request, ent configvalidator.Entity) {
	report, err := s.runValidation(r, ent)
	if err != nil {
		if errors.Is(err, configvalidator.ErrUnknownTarget) {
			// Caller mistake: no breaker accounting.
			httpError(w, http.StatusBadRequest, "validate: %v", err)
			return
		}
		s.brk.failure()
		httpError(w, http.StatusInternalServerError, "validate: %v", err)
		return
	}
	s.brk.success()
	opts := configvalidator.OutputOptions{}
	if tags := r.URL.Query().Get("tags"); tags != "" {
		opts.TagFilter = strings.Split(tags, ",")
	}
	w.Header().Set("Content-Type", "application/json")
	if err := configvalidator.WriteJSON(w, report, opts); err != nil {
		// Headers already sent; nothing safe to do but log-level surface.
		return
	}
}

// runValidation executes the validation itself with panic isolation: a
// panicking entity (hostile upload, parser bug past the crawler's per-file
// recovery) becomes a server-side failure that feeds the circuit breaker
// instead of killing the connection handler.
func (s *Server) runValidation(r *http.Request, ent configvalidator.Entity) (report *configvalidator.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			report, err = nil, fmt.Errorf("validation panicked: %v", p)
		}
	}()
	if target := r.URL.Query().Get("target"); target != "" {
		return s.validator.ValidateTarget(ent, target)
	}
	return s.validator.Validate(ent)
}

// lintResponse carries structured findings. Each finding has stable
// fields {code, severity, file, line, col, rule, msg}; the text field
// holds the rendered one-line form for clients that only display it.
type lintResponse struct {
	Errors   int                       `json:"errors"`
	Warnings int                       `json:"warnings"`
	Findings []analysis.JSONDiagnostic `json:"findings"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	content, err := io.ReadAll(boundedBody(w, r, MaxLintBytes))
	if err != nil {
		if rejectOversize(w, err, MaxLintBytes) {
			return
		}
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// Single-file analysis: unresolved parent_cvl_file references are
	// warnings here, since the request body has no surrounding project.
	// ?semantic=0 (or false) skips the constraint-level CVL4xx pass.
	semantic := r.URL.Query().Get("semantic")
	result := analysis.AnalyzeFileOpts("request.yaml", content, analysis.Options{
		NoSemantic: semantic == "0" || semantic == "false",
	})
	resp := lintResponse{Findings: make([]analysis.JSONDiagnostic, 0, len(result.Diagnostics))}
	resp.Errors, resp.Warnings = result.Counts()
	for _, d := range result.Diagnostics {
		resp.Findings = append(resp.Findings, d.JSON())
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
