package server

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"configvalidator/internal/telemetry"
)

// Limits tune the server's overload protection. The zero value of each
// field selects its default, so operators only set what they care about.
type Limits struct {
	// MaxInFlight is the number of validation requests allowed to execute
	// concurrently; 0 means 8. Validation admission is separate from the
	// cheap routes (targets, rules, lint, metrics), which are never gated.
	MaxInFlight int
	// MaxQueue is the number of validation requests allowed to wait for a
	// slot once MaxInFlight are executing; 0 means 2×MaxInFlight. Requests
	// beyond the queue are shed immediately with 429 and Retry-After.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed; 0 means 1s.
	QueueWait time.Duration
	// ValidateTimeout bounds each validation request end to end; 0 means
	// 60s. Requests over it get 503 via http.TimeoutHandler.
	ValidateTimeout time.Duration
	// BreakerThreshold is the number of consecutive server-side validation
	// failures (500s, panics) that open the circuit breaker; 0 means 5.
	// Client errors (bad frames, unknown targets) never count.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// probe request through; 0 means 10s.
	BreakerCooldown time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxInFlight <= 0 {
		l.MaxInFlight = 8
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = 2 * l.MaxInFlight
	}
	if l.QueueWait <= 0 {
		l.QueueWait = time.Second
	}
	if l.ValidateTimeout <= 0 {
		l.ValidateTimeout = 60 * time.Second
	}
	if l.BreakerThreshold <= 0 {
		l.BreakerThreshold = 5
	}
	if l.BreakerCooldown <= 0 {
		l.BreakerCooldown = 10 * time.Second
	}
	return l
}

// retryAfter renders a duration as a Retry-After header value: whole
// seconds, rounded up, at least 1.
func retryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// limiter is the bounded-admission gate: MaxInFlight slots plus a bounded
// wait queue. Slot tokens double as the drain mechanism — BeginDrain
// acquires every slot, which completes exactly when the last in-flight
// validation releases its token.
type limiter struct {
	slots    chan struct{}
	queueCap int64
	queued   atomic.Int64
	wait     time.Duration
	metrics  *telemetry.Collector
}

func newLimiter(l Limits, m *telemetry.Collector) *limiter {
	return &limiter{
		slots:    make(chan struct{}, l.MaxInFlight),
		queueCap: int64(l.MaxQueue),
		wait:     l.QueueWait,
		metrics:  m,
	}
}

// acquire obtains an execution slot, waiting in the bounded queue when all
// slots are busy. It reports false — shed the request — when the queue is
// full, the queue wait expires, or the client goes away.
func (l *limiter) acquire(ctx context.Context) bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	if l.queued.Add(1) > l.queueCap {
		l.queued.Add(-1)
		return false
	}
	l.metrics.QueueEnter()
	defer func() {
		l.queued.Add(-1)
		l.metrics.QueueExit()
	}()
	timer := time.NewTimer(l.wait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return true
	case <-timer.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (l *limiter) release() { <-l.slots }

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker around entity
// validation. Closed: requests flow, failures count. Open: requests are
// rejected until the cooldown elapses. Half-open: requests flow, the first
// failure re-opens, the first success closes and resets.
type breaker struct {
	mu        sync.Mutex
	state     int
	failures  int
	openedAt  time.Time
	threshold int
	cooldown  time.Duration
	metrics   *telemetry.Collector
	now       func() time.Time // test seam
}

func newBreaker(l Limits, m *telemetry.Collector) *breaker {
	return &breaker{
		threshold: l.BreakerThreshold,
		cooldown:  l.BreakerCooldown,
		metrics:   m,
		now:       time.Now,
	}
}

// allow reports whether a validation request may proceed, transitioning
// open → half-open once the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
	}
	return true
}

// success records a server-side validation success, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.metrics.BreakerClosed()
	}
	b.state = breakerClosed
	b.failures = 0
}

// failure records a server-side validation failure: a half-open breaker
// re-opens immediately, a closed one opens at the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.metrics.BreakerOpened()
}

// isOpen reports whether the breaker currently rejects requests, without
// transitioning state (for /readyz).
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}
