package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/faults"
	"configvalidator/internal/telemetry"
)

// overloadServer builds a Server with explicit limits, an armed test gate,
// and an httptest listener.
func overloadServer(t *testing.T, limits Limits, v *configvalidator.Validator) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	s, err := New(v)
	if err != nil {
		t.Fatal(err)
	}
	s.Limits = limits
	gate := make(chan struct{})
	s.testGate = gate
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv, gate
}

// eventually polls cond for up to 5s.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within 5s", what)
}

func postFrame(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/validate/frame", "application/jsonl", frameBody(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestOverloadShedsExactlyExcess is the overload acceptance test: with an
// in-flight limit of N and a queue of Q, N+Q+k concurrent requests yield
// exactly k immediate 429s (each with Retry-After) while the N running
// and Q queued requests all complete 200 once capacity frees up.
func TestOverloadShedsExactlyExcess(t *testing.T) {
	const inflight, queue, extra = 2, 1, 3
	s, srv, gate := overloadServer(t, Limits{
		MaxInFlight: inflight,
		MaxQueue:    queue,
		QueueWait:   30 * time.Second, // queued request must survive orchestration
	}, nil)

	type outcome struct {
		code       int
		retryAfter string
	}
	results := make(chan outcome, inflight+queue+extra)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp := postFrame(t, srv.URL)
		defer func() { _ = resp.Body.Close() }()
		_, _ = io.Copy(io.Discard, resp.Body)
		results <- outcome{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
	}

	// Fill every slot, then the queue, syncing on observable gate state so
	// the shed requests below race with nothing.
	wg.Add(inflight)
	for i := 0; i < inflight; i++ {
		go post()
	}
	eventually(t, "all slots held", func() bool { return len(s.lim.slots) == inflight })
	wg.Add(queue)
	for i := 0; i < queue; i++ {
		go post()
	}
	eventually(t, "queue occupied", func() bool { return s.lim.queued.Load() == queue })

	// Saturated: these must shed immediately.
	wg.Add(extra)
	for i := 0; i < extra; i++ {
		go post()
	}
	var shed int
	for i := 0; i < extra; i++ {
		out := <-results
		if out.code != http.StatusTooManyRequests {
			t.Fatalf("saturated request returned %d, want 429", out.code)
		}
		if secs, err := strconv.Atoi(out.retryAfter); err != nil || secs < 1 {
			t.Errorf("429 Retry-After = %q, want integer seconds >= 1", out.retryAfter)
		}
		shed++
	}

	// Release the gate: the held and queued requests finish cleanly.
	close(gate)
	wg.Wait()
	close(results)
	for out := range results {
		if out.code != http.StatusOK {
			t.Errorf("admitted request returned %d, want 200", out.code)
		}
	}
	if shed != extra {
		t.Errorf("shed %d requests, want exactly %d", shed, extra)
	}
	snap := s.Metrics().Snapshot()
	if snap.Shed != extra {
		t.Errorf("telemetry shed = %d, want %d", snap.Shed, extra)
	}
	if snap.QueueDepth != 0 {
		t.Errorf("queue-depth gauge = %d after drain, want 0", snap.QueueDepth)
	}
}

func getReadyz(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestBreakerOpensOnConsecutiveFailures drives the circuit breaker through
// its full lifecycle: consecutive server-side validation failures open it
// (503s, /readyz not-ready), the cooldown admits a probe, and a clean
// probe closes it again.
func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	// The first two validations hit an injected entity-access failure —
	// a server-side fault, unlike a client's bad upload — then the
	// injector goes quiet and validation works again.
	inj := faults.MustNew(faults.Rule{Op: faults.OpWalk, Times: 2, Kind: faults.KindError, Msg: "store down"})
	v, err := configvalidator.New(configvalidator.WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	s, srv, gate := overloadServer(t, Limits{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	}, v)
	close(gate) // no admission games in this test

	for i := 0; i < 2; i++ {
		resp := postFrame(t, srv.URL)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted validation %d returned %d, want 500", i+1, resp.StatusCode)
		}
	}

	// Breaker open: validations rejected without running, /readyz not ready.
	resp := postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request with open breaker returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 missing Retry-After")
	}
	if code, body := getReadyz(t, srv.URL); code != http.StatusServiceUnavailable || body["breaker_open"] != true {
		t.Fatalf("readyz with open breaker = %d %v, want 503 with breaker_open", code, body)
	}
	snap := s.Metrics().Snapshot()
	if snap.BreakerOpens != 1 || !snap.BreakerOpen {
		t.Errorf("telemetry breaker opens=%d open=%v, want 1/true", snap.BreakerOpens, snap.BreakerOpen)
	}

	// Cooldown elapses (simulated clock): the probe runs, succeeds, and
	// closes the breaker.
	s.brk.mu.Lock()
	s.brk.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	s.brk.mu.Unlock()
	resp = postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown returned %d, want 200", resp.StatusCode)
	}
	if code, body := getReadyz(t, srv.URL); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz after recovery = %d %v, want 200 ready", code, body)
	}
	if snap := s.Metrics().Snapshot(); snap.BreakerOpen {
		t.Error("breaker-open gauge still set after recovery")
	}
}

// TestBreakerHalfOpenFailureReopens: a failing probe re-opens the breaker
// immediately instead of resuming traffic.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpWalk, Times: 3, Kind: faults.KindError, Msg: "still down"})
	v, err := configvalidator.New(configvalidator.WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	s, srv, gate := overloadServer(t, Limits{BreakerThreshold: 2, BreakerCooldown: time.Hour}, v)
	close(gate)

	for i := 0; i < 2; i++ {
		resp := postFrame(t, srv.URL)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	offset := 2 * time.Hour
	s.brk.mu.Lock()
	s.brk.now = func() time.Time { return time.Now().Add(offset) }
	s.brk.mu.Unlock()

	// Probe hits the third injected fault → 500 → breaker re-opens.
	resp := postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing probe returned %d, want 500", resp.StatusCode)
	}
	resp = postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request after failed probe returned %d, want 503", resp.StatusCode)
	}
	if snap := s.Metrics().Snapshot(); snap.BreakerOpens != 2 {
		t.Errorf("telemetry breaker opens = %d, want 2", snap.BreakerOpens)
	}
}

// TestUnknownTargetDoesNotTripBreaker: caller mistakes are 400s and never
// feed breaker accounting.
func TestUnknownTargetDoesNotTripBreaker(t *testing.T) {
	s, srv, gate := overloadServer(t, Limits{BreakerThreshold: 1}, nil)
	close(gate)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/validate/frame?target=nope", "application/jsonl", frameBody(t, 0))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown target returned %d, want 400", resp.StatusCode)
		}
	}
	if s.brk.isOpen() {
		t.Error("client errors opened the breaker")
	}
	resp := postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean validation after client errors returned %d, want 200", resp.StatusCode)
	}
}

// TestGracefulDrain: BeginDrain lets the in-flight validation finish,
// rejects new ones with 503, and flips /readyz — the shutdown sequence
// cvserver runs on SIGTERM.
func TestGracefulDrain(t *testing.T) {
	s, srv, gate := overloadServer(t, Limits{MaxInFlight: 2}, nil)

	inFlightDone := make(chan int, 1)
	go func() {
		resp := postFrame(t, srv.URL)
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		inFlightDone <- resp.StatusCode
	}()
	eventually(t, "request in flight", func() bool { return len(s.lim.slots) == 1 })

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- s.BeginDrain(ctx)
	}()
	eventually(t, "draining flagged", s.Draining)

	// New validations are rejected while the held one is still running.
	resp := postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("validation during drain returned %d, want 503", resp.StatusCode)
	}
	if code, body := getReadyz(t, srv.URL); code != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("readyz during drain = %d %v, want 503 draining", code, body)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished with request still in flight: %v", err)
	default:
	}

	// Release the request: it completes 200 and the drain finishes.
	close(gate)
	if code := <-inFlightDone; code != http.StatusOK {
		t.Fatalf("in-flight request during drain returned %d, want 200", code)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDrainTimeout: a wedged in-flight validation makes BeginDrain give
// up at its context deadline instead of hanging shutdown forever.
func TestDrainTimeout(t *testing.T) {
	s, srv, gate := overloadServer(t, Limits{MaxInFlight: 1}, nil)
	t.Cleanup(func() { close(gate) }) // unpark before srv.Close waits on the connection
	go func() {
		resp := postFrame(t, srv.URL) // parks on the gate until cleanup
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	eventually(t, "request parked", func() bool { return len(s.lim.slots) == 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.BeginDrain(ctx); err == nil {
		t.Fatal("drain with wedged request returned nil, want deadline error")
	}
}

// TestReadyzFreshServer: a fresh server is ready.
func TestReadyzFreshServer(t *testing.T) {
	srv := testServer(t)
	code, body := getReadyz(t, srv.URL)
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh readyz = %d %v, want 200 ready", code, body)
	}
}

// TestQueueWaitExpiryShedsQueued: a queued request that never gets a slot
// sheds with 429 once QueueWait expires.
func TestQueueWaitExpiryShedsQueued(t *testing.T) {
	s, srv, gate := overloadServer(t, Limits{
		MaxInFlight: 1,
		MaxQueue:    1,
		QueueWait:   30 * time.Millisecond,
	}, nil)
	t.Cleanup(func() { close(gate) }) // unpark before srv.Close waits on the connection
	go func() {
		resp := postFrame(t, srv.URL) // holds the only slot until cleanup
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	eventually(t, "slot held", func() bool { return len(s.lim.slots) == 1 })
	resp := postFrame(t, srv.URL)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued request after wait expiry returned %d, want 429", resp.StatusCode)
	}
	if fmt.Sprint(resp.Header.Get("Retry-After")) == "" {
		t.Error("429 missing Retry-After")
	}
}

// TestQueueGaugeDecrementsOnClientAbort pins limiter.acquire's gauge
// accounting on the abandonment path: a queued request whose client goes
// away (context cancelled) must decrement the queue-depth gauge on its
// way out, or /metrics reports phantom queued work forever.
func TestQueueGaugeDecrementsOnClientAbort(t *testing.T) {
	m := telemetry.NewCollector()
	lim := newLimiter(Limits{MaxInFlight: 1, MaxQueue: 4, QueueWait: time.Minute}.withDefaults(), m)
	if !lim.acquire(context.Background()) {
		t.Fatal("first acquire should take the only slot")
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan bool, 1)
	go func() { got <- lim.acquire(ctx) }()
	eventually(t, "request queued", func() bool { return m.Snapshot().QueueDepth == 1 })
	cancel()
	if <-got {
		t.Fatal("acquire succeeded after its context was cancelled")
	}
	eventually(t, "queue gauge drained", func() bool { return m.Snapshot().QueueDepth == 0 })
	if q := lim.queued.Load(); q != 0 {
		t.Fatalf("internal queued counter = %d, want 0", q)
	}
	// The freed queue capacity is genuinely reusable: release the slot and
	// a fresh acquire must succeed immediately.
	lim.release()
	if !lim.acquire(context.Background()) {
		t.Fatal("acquire after abort should succeed")
	}
}
