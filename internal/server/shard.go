package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/dist"
	"configvalidator/internal/faults"
	"configvalidator/internal/frames"
	"configvalidator/internal/journal"
)

// shardIDPattern restricts shard ids to filename-safe tokens, since the
// id names the worker's journal segment on disk.
var shardIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// shardEntity is one decoded request entity ready to scan.
type shardEntity struct {
	rec dist.EntityRecord
	ent configvalidator.Entity
}

// streamWriter serializes StreamRecords onto the response as JSON lines,
// flushing each one so the coordinator's lease watchdog sees liveness in
// real time. The mutex interleaves heartbeats with results safely.
type streamWriter struct {
	mu  sync.Mutex
	w   http.ResponseWriter
	f   http.Flusher
	err error
}

func (sw *streamWriter) send(rec dist.StreamRecord) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		sw.err = err
		return
	}
	if _, err := sw.w.Write(append(line, '\n')); err != nil {
		sw.err = err
		return
	}
	if sw.f != nil {
		sw.f.Flush()
	}
}

// handleShardScan executes one shard lease: decode the shipped frames,
// scan them through the ordinary fleet pipeline (per-entity timeout,
// retries, panic isolation, and — with ShardJournalDir set — the same
// journal resume protocol a local run uses), and stream back heartbeats,
// per-entity results, and a done trailer. The coordinator revokes the
// lease by dropping the connection; r.Context() cancellation then stops
// the scan.
func (s *Server) handleShardScan(w http.ResponseWriter, r *http.Request) {
	shardID := r.URL.Query().Get("shard")
	if shardID == "" {
		shardID = "shard"
	}
	if !shardIDPattern.MatchString(shardID) {
		httpError(w, http.StatusBadRequest, "bad shard id %q", shardID)
		return
	}
	heartbeat := 2 * time.Second
	if v := r.URL.Query().Get("heartbeat"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad heartbeat: %v", err)
			return
		}
		if d > 0 {
			heartbeat = d
		}
	}
	if heartbeat < 10*time.Millisecond {
		heartbeat = 10 * time.Millisecond
	}
	var scanTimeout time.Duration
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad timeout: %v", err)
			return
		}
		if d > 0 {
			scanTimeout = d
		}
	}
	retries := 0
	if v := r.URL.Query().Get("retries"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &retries); err != nil || retries < 0 {
			httpError(w, http.StatusBadRequest, "bad retries %q", v)
			return
		}
	}

	// Decode the whole shard up front: a malformed entity must fail the
	// request with 400 before any result is streamed, and the journal
	// segment must not open for a request that cannot run.
	dec := json.NewDecoder(boundedBody(w, r, s.MaxUploadBytes))
	var ents []shardEntity
	digests := make(map[string]string)
	for {
		var rec dist.EntityRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if rejectOversize(w, err, s.MaxUploadBytes) {
				return
			}
			httpError(w, http.StatusBadRequest, "bad entity record: %v", err)
			return
		}
		frame, err := frames.Read(bytes.NewReader(rec.Frame))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad frame for %q: %v", rec.Name, err)
			return
		}
		ent := frame.Entity()
		if rec.Name != "" && rec.Name != ent.Name() {
			httpError(w, http.StatusBadRequest, "entity name %q does not match frame %q", rec.Name, ent.Name())
			return
		}
		digests[ent.Name()] = rec.Digest
		ents = append(ents, shardEntity{rec: rec, ent: ent})
	}
	if len(ents) == 0 {
		httpError(w, http.StatusBadRequest, "empty shard")
		return
	}

	// The per-shard journal segment gives the worker local crash-resume:
	// a re-leased shard replays what this worker already completed instead
	// of re-scanning it. The journal's flock ownership doubles as lease
	// fencing — while a revoked request is still tearing down, a new lease
	// for the same shard gets 409 and the coordinator retries with backoff.
	// segment=0 disables the segment: the coordinator sends it after a 507
	// so a disk-pressured worker still scans, just without local resume.
	var seg *journal.Journal
	if s.ShardJournalDir != "" && r.URL.Query().Get("segment") != "0" {
		path := filepath.Join(s.ShardJournalDir, shardID+".cvj")
		var err error
		seg, err = journal.Open(path, journal.Options{
			Metrics: s.metrics,
			Faults:  s.validator.Faults(),
			WriteOp: faults.OpSegmentWrite,
		})
		if err != nil {
			if errors.Is(err, journal.ErrBusy) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusConflict, "shard journal segment busy: %v", err)
				return
			}
			if errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO) {
				// Disk pressure is not a worker fault: 507 tells the
				// coordinator to keep the lease and re-dispatch without a
				// segment, so the breaker stays closed.
				httpError(w, http.StatusInsufficientStorage, "open shard journal: %v", err)
				return
			}
			s.brk.failure()
			httpError(w, http.StatusInternalServerError, "open shard journal: %v", err)
			return
		}
		defer func() { _ = seg.Close() }()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	out := &streamWriter{w: w, f: flusher}

	// Heartbeats keep the coordinator's lease watchdog fed while long
	// scans produce no results.
	stopHeartbeat := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-stopHeartbeat:
				return
			case <-r.Context().Done():
				return
			case <-ticker.C:
				out.send(dist.StreamRecord{Type: dist.TypeHeartbeat})
			}
		}
	}()

	feed := make(chan configvalidator.Entity)
	go func() {
		defer close(feed)
		for _, se := range ents {
			if s.ShardScanDelay > 0 {
				// Test/smoke pacing knob: stretches the scan so chaos drills
				// can kill a worker mid-shard deterministically.
				timer := time.NewTimer(s.ShardScanDelay)
				select {
				case <-timer.C:
				case <-r.Context().Done():
					timer.Stop()
					return
				}
			}
			select {
			case feed <- se.ent:
			case <-r.Context().Done():
				return
			}
		}
	}()

	n := 0
	degradedSent := false
	results := s.validator.ValidateFleet(r.Context(), feed, configvalidator.FleetOptions{
		Workers:     s.ShardWorkers,
		ScanTimeout: scanTimeout,
		Retries:     retries,
		Journal:     seg,
	})
	for res := range results {
		rec := dist.StreamRecord{
			Type:    dist.TypeResult,
			Entity:  res.Entity,
			Digest:  digests[res.Entity],
			Resumed: res.Resumed,
		}
		if res.Err != nil {
			rec.Err = res.Err.Error()
			rec.ErrKind = configvalidator.ClassifyScanError(res.Err)
		} else {
			rec.Report = journal.NewReportRecord(res.Report)
		}
		out.send(rec)
		n++
		// Mid-shard disk pressure: tell the coordinator once that this
		// shard lost worker-side resume, and keep streaming results.
		if !degradedSent && seg != nil && seg.Degraded() {
			degradedSent = true
			drec := dist.StreamRecord{Type: dist.TypeDegradedJournal}
			if derr := seg.DegradedErr(); derr != nil {
				drec.Err = derr.Error()
			}
			out.send(drec)
		}
	}
	close(stopHeartbeat)
	hbWG.Wait()
	if r.Context().Err() != nil {
		// Revoked lease: no done trailer, the coordinator re-leases the
		// remainder. Results already streamed (and journaled) are kept.
		return
	}
	out.send(dist.StreamRecord{Type: dist.TypeDone, Scanned: n})
	s.brk.success()
}
