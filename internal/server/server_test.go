package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func frameBody(t *testing.T, misconfig float64) *bytes.Buffer {
	t.Helper()
	host, _ := fixtures.UbuntuHost("client-host", fixtures.Profile{Seed: 8, MisconfigRate: misconfig})
	frame, err := frames.Capture(host, nil, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := frame.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %s", resp.Status)
	}
}

func TestTargets(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/targets")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var decoded struct {
		Targets []struct {
			Name  string `json:"name"`
			Rules int    `json:"rules"`
		} `json:"targets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Targets) != 11 {
		t.Errorf("targets = %d", len(decoded.Targets))
	}
	total := 0
	for _, tg := range decoded.Targets {
		total += tg.Rules
	}
	if total != 135 {
		t.Errorf("total rules over API = %d", total)
	}
}

func TestRulesEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/rules/sshd")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "PermitRootLogin") {
		t.Errorf("status %s body %q...", resp.Status, string(body[:80]))
	}

	r2, err := http.Get(srv.URL + "/v1/rules/kubernetes")
	if err != nil {
		t.Fatal(err)
	}
	_ = r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown target status = %s", r2.Status)
	}
}

func TestValidateFrame(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/validate/frame", "application/jsonl", frameBody(t, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %s: %s", resp.Status, body)
	}
	var decoded struct {
		Entity  string         `json:"entity"`
		Summary map[string]int `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Entity != "client-host" || decoded.Summary["fail"] == 0 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestValidateFrameWithTargetAndTags(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/validate/frame?target=sshd&tags=%23cis", "application/jsonl", frameBody(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var decoded struct {
		Results []struct {
			ManifestEntity string `json:"manifest_entity"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range decoded.Results {
		if r.ManifestEntity != "sshd" {
			t.Errorf("leaked entity %s", r.ManifestEntity)
		}
	}
}

func TestValidateFrameBadInput(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/validate/frame", "text/plain", strings.NewReader("not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %s", resp.Status)
	}
	r2, err := http.Post(srv.URL+"/v1/validate/frame?target=nope", "application/jsonl", frameBody(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad target status = %s", r2.Status)
	}
}

func TestValidateTar(t *testing.T) {
	srv := testServer(t)
	img, _ := fixtures.Image("tarred", "v1", fixtures.Profile{Seed: 3, MisconfigRate: 1})
	var buf bytes.Buffer
	if err := img.ExportTar(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/validate/tar?name=tarred:v1&target=sshd", "application/x-tar", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %s: %s", resp.Status, body)
	}
	var decoded struct {
		Entity  string         `json:"entity"`
		Summary map[string]int `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Entity != "tarred:v1" || decoded.Summary["fail"] == 0 {
		t.Errorf("decoded = %+v", decoded)
	}

	bad, err := http.Post(srv.URL+"/v1/validate/tar", "application/x-tar", strings.NewReader("not a tar"))
	if err != nil {
		t.Fatal(err)
	}
	_ = bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad tar status = %s", bad.Status)
	}
}

func TestLintEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/lint", "application/yaml", strings.NewReader("config_nme: typo\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	// Decode against the raw wire shape, not lintResponse, so the JSON
	// field names themselves are pinned.
	var decoded struct {
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
		Findings []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Rule     string `json:"rule"`
			Msg      string `json:"msg"`
			Text     string `json:"text"`
		} `json:"findings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Errors != 1 || len(decoded.Findings) == 0 {
		t.Fatalf("lint = %+v", decoded)
	}
	f := decoded.Findings[0]
	if f.Code != "CVL003" || f.Severity != "error" || f.File != "request.yaml" || f.Line != 1 || f.Col != 1 {
		t.Errorf("finding = %+v", f)
	}
	if !strings.Contains(f.Msg, "config_name") {
		t.Errorf("no typo suggestion: %+v", f)
	}
	// The compatibility text field carries the rendered one-line form.
	if !strings.Contains(f.Text, "request.yaml:1:1") || !strings.Contains(f.Text, "CVL003") {
		t.Errorf("text = %q", f.Text)
	}
}

// TestLintEndpointParentIsWarning pins the single-file analysis mode: a
// parent_cvl_file reference cannot resolve inside a request body, so it
// must surface as a warning, never an error.
func TestLintEndpointParentIsWarning(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/lint", "application/yaml", strings.NewReader("parent_cvl_file: base.yaml\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var decoded lintResponse
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Errors != 0 || decoded.Warnings == 0 {
		t.Fatalf("lint = %+v", decoded)
	}
	if decoded.Findings[0].Code != "CVL101" || decoded.Findings[0].Severity != "warning" {
		t.Errorf("finding = %+v", decoded.Findings[0])
	}
}

// TestLintEndpointSemanticToggle pins that the constraint-level CVL4xx
// pass runs by default and that ?semantic=0 skips it.
func TestLintEndpointSemanticToggle(t *testing.T) {
	srv := testServer(t)
	const unsat = "config_name: Protocol\n" +
		"preferred_value: [\"2\"]\n" +
		"preferred_value_match: exact,any\n" +
		"non_preferred_value: [\"2\"]\n" +
		"non_preferred_value_match: exact,any\n"
	codes := func(url string) map[string]bool {
		t.Helper()
		resp, err := http.Post(url, "application/yaml", strings.NewReader(unsat))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var decoded lintResponse
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, f := range decoded.Findings {
			got[f.Code] = true
		}
		return got
	}
	if got := codes(srv.URL + "/v1/lint"); !got["CVL401"] {
		t.Errorf("default lint missing CVL401: %v", got)
	}
	if got := codes(srv.URL + "/v1/lint?semantic=0"); got["CVL401"] {
		t.Errorf("semantic=0 still reported CVL401: %v", got)
	}
}

// smallLimitServer is a test server whose upload cap is shrunk so the
// 413 path can be exercised without multi-hundred-MB bodies.
func smallLimitServer(t *testing.T, limit int64) *httptest.Server {
	t.Helper()
	s, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	s.MaxUploadBytes = limit
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestValidateFrameOversizedBodyRejected(t *testing.T) {
	srv := smallLimitServer(t, 1024)
	body := frameBody(t, 0) // a full fixture frame is far beyond 1 KiB
	if body.Len() <= 1024 {
		t.Fatalf("fixture frame unexpectedly small: %d bytes", body.Len())
	}
	resp, err := http.Post(srv.URL+"/v1/validate/frame", "application/jsonl", body)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %s (want 413): %s", resp.Status, out)
	}
}

func TestValidateTarOversizedBodyRejected(t *testing.T) {
	srv := smallLimitServer(t, 512)
	img, _ := fixtures.Image("big", "v1", fixtures.Profile{Seed: 3})
	var buf bytes.Buffer
	if err := img.ExportTar(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 512 {
		t.Fatalf("fixture tar unexpectedly small: %d bytes", buf.Len())
	}
	resp, err := http.Post(srv.URL+"/v1/validate/tar?name=big:v1", "application/x-tar", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %s (want 413): %s", resp.Status, out)
	}
}

// TestOversizedBodyNeverTruncatedClean is the regression the limit change
// guards against: a body cut off at the limit must never come back as a
// clean 200 report.
func TestOversizedBodyNeverTruncatedClean(t *testing.T) {
	srv := smallLimitServer(t, 2048)
	body := frameBody(t, 1) // heavily misconfigured entity
	resp, err := http.Post(srv.URL+"/v1/validate/frame", "application/jsonl", body)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("oversized upload returned 200 with report: %s", out)
	}
}

func TestLintOversizedBodyRejected(t *testing.T) {
	srv := testServer(t)
	big := strings.NewReader("# " + strings.Repeat("x", MaxLintBytes+1))
	resp, err := http.Post(srv.URL+"/v1/lint", "application/yaml", big)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %s (want 413)", resp.Status)
	}
	// The error body names the limit so clients can size retries.
	out, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(out), fmt.Sprint(MaxLintBytes)) {
		t.Errorf("413 body = %q", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	// Drive a validation and a 404-ish request first so counters move.
	resp, err := http.Post(srv.URL+"/v1/validate/frame", "application/jsonl", frameBody(t, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	bad, err := http.Post(srv.URL+"/v1/validate/frame", "text/plain", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	_ = bad.Body.Close()

	m, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Body.Close() }()
	if m.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %s", m.Status)
	}
	if ct := m.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	text, _ := io.ReadAll(m.Body)
	body := string(text)
	for _, want := range []string{
		"configvalidator_scans_total 1",
		`configvalidator_http_requests_total{route="POST /v1/validate/frame",code="200"} 1`,
		`configvalidator_http_requests_total{route="POST /v1/validate/frame",code="400"} 1`,
		"configvalidator_scan_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// Latency histogram recorded something.
	if !strings.Contains(body, `configvalidator_scan_duration_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("scan latency histogram empty:\n%s", body)
	}
}

// TestFrameRoundTripThroughService is the end-to-end touchless story:
// capture locally, POST, get the same verdicts a local scan yields.
func TestFrameRoundTripThroughService(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/validate/frame", "application/jsonl", frameBody(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var decoded struct {
		Summary map[string]int `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Summary["fail"] != 0 || decoded.Summary["error"] != 0 {
		t.Errorf("clean frame over service: %+v", decoded.Summary)
	}
}
