module configvalidator

go 1.22
