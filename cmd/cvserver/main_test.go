package main

import "testing"

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}); err == nil {
		t.Error("dangling flag accepted")
	}
}

func TestBadListenAddress(t *testing.T) {
	// An unbindable address surfaces as a startup error rather than a hang.
	if err := run([]string{"-addr", "256.256.256.256:99999"}); err == nil {
		t.Error("unbindable address accepted")
	}
}

func TestBadMaxUpload(t *testing.T) {
	if err := run([]string{"-max-upload", "0"}); err == nil {
		t.Error("zero upload limit accepted")
	}
	if err := run([]string{"-max-upload", "-5"}); err == nil {
		t.Error("negative upload limit accepted")
	}
}
