// Command cvserver runs ConfigValidator as an HTTP validation service —
// the deployment shape of the paper's production system: clients capture
// configuration frames locally (with crawlframe) and POST them for
// validation; no agent or remote access to the scanned entity is needed.
//
//	cvserver -addr :8080
//	crawlframe -demo host -out host.frame
//	curl --data-binary @host.frame http://localhost:8080/v1/validate/frame
//	curl http://localhost:8080/metrics        # scan + HTTP runtime metrics
//	curl http://localhost:8080/readyz         # breaker / drain readiness
//
// Uploads beyond -max-upload bytes are rejected with HTTP 413. Validation
// routes run behind overload protection: at most -max-inflight concurrent
// validations with a -queue-sized wait queue (excess requests shed with
// 429 + Retry-After), a per-request -validate-timeout, and a circuit
// breaker that opens after -breaker-threshold consecutive server-side
// failures for -breaker-cooldown. On SIGINT/SIGTERM the server drains:
// /readyz flips to 503, in-flight validations finish, then the listener
// closes.
//
// Setting CV_FAULTS arms deterministic fault injection in the validation
// pipeline (chaos drills); see docs/OPERATIONS.md.
//
// With -coordinate, cvserver runs a distributed fleet validation instead
// of serving HTTP: it generates (or reads) a fleet of entities, shards
// them across the cvworker processes named by -workers under lease-based
// fault tolerance, and prints the merged fleet summary. An empty -workers
// list scans the same fleet in-process — the baseline the worker-kill CI
// smoke compares the distributed summary digest against:
//
//	cvserver -coordinate -fleet 24                                # local baseline
//	cvserver -coordinate -fleet 24 -workers http://h1:9101,http://h2:9101
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/dist"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/fsutil"
	"configvalidator/internal/server"
)

// faultsEnvVar names the fault-injection spec variable for log lines.
const faultsEnvVar = "CV_FAULTS"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cvserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cvserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxUpload := fs.Int64("max-upload", server.MaxFrameBytes, "largest accepted frame/tar body in bytes (oversized uploads get HTTP 413)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent validation requests admitted (0 = default)")
	maxQueue := fs.Int("queue", 0, "validation requests allowed to wait for a slot (0 = default)")
	queueWait := fs.Duration("queue-wait", 0, "longest a queued validation request waits before shedding (0 = default)")
	validateTimeout := fs.Duration("validate-timeout", 0, "per-request validation timeout (0 = default)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive server-side failures that open the circuit breaker (0 = default)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long the breaker stays open before probing (0 = default)")
	parallelism := fs.Int("parallelism", 0, "intra-entity evaluation parallelism (0 = GOMAXPROCS, 1 = serial)")
	parseCacheSize := fs.Int("parse-cache", configvalidator.DefaultParseCacheSize, "content-addressed parse cache capacity in files (0 = disabled)")
	coordinate := fs.Bool("coordinate", false, "run a coordinated fleet validation instead of serving HTTP")
	workers := fs.String("workers", "", "comma-separated cvworker base URLs for -coordinate (empty = scan in-process)")
	fleetSize := fs.Int("fleet", 16, "number of generated fleet entities for -coordinate")
	seed := fs.Int64("seed", 2017, "fleet generation seed for -coordinate")
	misconfigRate := fs.Float64("misconfig", 0.4, "fleet misconfiguration rate for -coordinate")
	shardSize := fs.Int("shard-size", 0, "entities per worker lease for -coordinate (0 = default)")
	leaseTTL := fs.Duration("lease-ttl", 0, "silence tolerated on a shard stream before revoking its lease (0 = default)")
	heartbeatInterval := fs.Duration("heartbeat", 0, "heartbeat cadence requested from workers (0 = lease-ttl/4)")
	scanTimeout := fs.Duration("scan-timeout", 0, "per-entity scan deadline for -coordinate (0 = none)")
	scanRetries := fs.Int("scan-retries", 0, "transient-failure retries per entity for -coordinate")
	fleetWorkers := fs.Int("fleet-workers", 0, "in-process scan concurrency for -coordinate without -workers (0 = GOMAXPROCS)")
	journalPath := fs.String("journal", "", "coordinator result journal for -coordinate (crash-safe, resumable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxUpload <= 0 {
		return fmt.Errorf("-max-upload must be positive")
	}
	if *coordinate {
		return runCoordinate(coordinateConfig{
			workers:       *workers,
			fleetSize:     *fleetSize,
			seed:          *seed,
			misconfigRate: *misconfigRate,
			shardSize:     *shardSize,
			leaseTTL:      *leaseTTL,
			heartbeat:     *heartbeatInterval,
			scanTimeout:   *scanTimeout,
			scanRetries:   *scanRetries,
			fleetWorkers:  *fleetWorkers,
			journalPath:   *journalPath,
			parallelism:   *parallelism,
		})
	}
	inj, err := configvalidator.FaultsFromEnv()
	if err != nil {
		return err
	}
	vopts := []configvalidator.Option{
		configvalidator.WithTelemetry(configvalidator.NewCollector()),
		configvalidator.WithParallelism(*parallelism),
	}
	if *parseCacheSize > 0 {
		vopts = append(vopts, configvalidator.WithParseCache(configvalidator.NewParseCache(*parseCacheSize)))
	}
	if inj != nil {
		fmt.Fprintf(os.Stderr, "cvserver: fault injection armed via %s\n", faultsEnvVar)
		vopts = append(vopts, configvalidator.WithFaults(inj))
	}
	validator, err := configvalidator.New(vopts...)
	if err != nil {
		return err
	}
	s, err := server.New(validator)
	if err != nil {
		return err
	}
	s.MaxUploadBytes = *maxUpload
	s.Limits = server.Limits{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueWait:        *queueWait,
		ValidateTimeout:  *validateTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute, // frames can be large
		WriteTimeout:      5 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- httpServer.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "cvserver listening on %s (metrics at /metrics)\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "received %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Drain first: /readyz flips not-ready and new validations are
		// rejected while admitted ones run to completion; then close the
		// listener and remaining (cheap) connections.
		if err := s.BeginDrain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "cvserver: drain: %v\n", err)
		}
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}

// coordinateConfig carries the -coordinate flag values.
type coordinateConfig struct {
	workers       string
	fleetSize     int
	seed          int64
	misconfigRate float64
	shardSize     int
	leaseTTL      time.Duration
	heartbeat     time.Duration
	scanTimeout   time.Duration
	scanRetries   int
	fleetWorkers  int
	journalPath   string
	parallelism   int
}

// runCoordinate validates a deterministic generated fleet, either
// in-process (empty worker list — the baseline) or sharded across remote
// cvworkers with lease-based fault tolerance. The merged summary line
// goes to stdout; the two modes must print byte-identical summaries for
// the same fleet, which is what the worker-kill CI smoke asserts.
func runCoordinate(cfg coordinateConfig) error {
	collector := configvalidator.NewCollector()
	vopts := []configvalidator.Option{
		configvalidator.WithTelemetry(collector),
		configvalidator.WithParallelism(cfg.parallelism),
	}
	inj, err := configvalidator.FaultsFromEnv()
	if err != nil {
		return err
	}
	if inj != nil {
		fmt.Fprintln(os.Stderr, "cvserver: fault injection armed via CV_FAULTS")
		vopts = append(vopts, configvalidator.WithFaults(inj))
		fsutil.ArmFaults(inj)
	}
	v, err := configvalidator.New(vopts...)
	if err != nil {
		return err
	}

	fopts := configvalidator.FleetOptions{
		Workers:     cfg.fleetWorkers,
		ScanTimeout: cfg.scanTimeout,
		Retries:     cfg.scanRetries,
	}
	if cfg.journalPath != "" {
		jrnl, err := configvalidator.OpenJournal(cfg.journalPath, configvalidator.JournalOptions{
			Metrics: collector,
			Faults:  inj,
			OnDegraded: func(derr error) {
				fmt.Fprintf(os.Stderr, "cvserver: coordinator journal degraded, results no longer persisted (scan continues): %v\n", derr)
			},
			OnRecovered: func() {
				fmt.Fprintln(os.Stderr, "cvserver: coordinator journal recovered")
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = jrnl.Close() }()
		fopts.Journal = jrnl
	}
	var workerURLs []string
	for _, w := range strings.Split(cfg.workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workerURLs = append(workerURLs, w)
		}
	}
	if len(workerURLs) > 0 {
		fopts.Scheduler = dist.NewCoordinator(workerURLs, dist.Options{
			ShardSize:         cfg.shardSize,
			LeaseTTL:          cfg.leaseTTL,
			HeartbeatInterval: cfg.heartbeat,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		fmt.Fprintf(os.Stderr, "cvserver: coordinating %d entities across %d workers\n", cfg.fleetSize, len(workerURLs))
	}

	reg, _ := fixtures.Fleet(cfg.fleetSize, fixtures.Profile{Seed: cfg.seed, MisconfigRate: cfg.misconfigRate})
	entities := make(chan configvalidator.Entity)
	go func() {
		defer close(entities)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				continue
			}
			entities <- img.Entity()
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	summary := configvalidator.Summarize(v.ValidateFleet(ctx, entities, fopts))
	fmt.Println(summary.String())

	snap := collector.Snapshot()
	if len(workerURLs) > 0 {
		fmt.Fprintf(os.Stderr,
			"cvserver: shards dispatched=%d completed=%d lease_reassignments=%d heartbeats_missed=%d duplicates_dropped=%d rpc_retries=%d journal_append_errors=%d merge_stalls=%d\n",
			snap.ShardsDispatched, snap.ShardsCompleted, snap.LeaseReassignments,
			snap.HeartbeatsMissed, snap.DuplicateResults, snap.WorkerRPCRetries,
			snap.JournalAppendErrors, snap.MergeStalls)
	}
	if summary.Errors > 0 {
		return fmt.Errorf("fleet completed with %d errored entities", summary.Errors)
	}
	return nil
}
