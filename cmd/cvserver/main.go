// Command cvserver runs ConfigValidator as an HTTP validation service —
// the deployment shape of the paper's production system: clients capture
// configuration frames locally (with crawlframe) and POST them for
// validation; no agent or remote access to the scanned entity is needed.
//
//	cvserver -addr :8080
//	crawlframe -demo host -out host.frame
//	curl --data-binary @host.frame http://localhost:8080/v1/validate/frame
//	curl http://localhost:8080/metrics        # scan + HTTP runtime metrics
//
// Uploads beyond -max-upload bytes are rejected with HTTP 413.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"configvalidator/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cvserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cvserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxUpload := fs.Int64("max-upload", server.MaxFrameBytes, "largest accepted frame/tar body in bytes (oversized uploads get HTTP 413)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxUpload <= 0 {
		return fmt.Errorf("-max-upload must be positive")
	}
	s, err := server.New(nil)
	if err != nil {
		return err
	}
	s.MaxUploadBytes = *maxUpload
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute, // frames can be large
		WriteTimeout:      5 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- httpServer.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "cvserver listening on %s (metrics at /metrics)\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "received %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}
