// Command cvserver runs ConfigValidator as an HTTP validation service —
// the deployment shape of the paper's production system: clients capture
// configuration frames locally (with crawlframe) and POST them for
// validation; no agent or remote access to the scanned entity is needed.
//
//	cvserver -addr :8080
//	crawlframe -demo host -out host.frame
//	curl --data-binary @host.frame http://localhost:8080/v1/validate/frame
//	curl http://localhost:8080/metrics        # scan + HTTP runtime metrics
//	curl http://localhost:8080/readyz         # breaker / drain readiness
//
// Uploads beyond -max-upload bytes are rejected with HTTP 413. Validation
// routes run behind overload protection: at most -max-inflight concurrent
// validations with a -queue-sized wait queue (excess requests shed with
// 429 + Retry-After), a per-request -validate-timeout, and a circuit
// breaker that opens after -breaker-threshold consecutive server-side
// failures for -breaker-cooldown. On SIGINT/SIGTERM the server drains:
// /readyz flips to 503, in-flight validations finish, then the listener
// closes.
//
// Setting CV_FAULTS arms deterministic fault injection in the validation
// pipeline (chaos drills); see docs/OPERATIONS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/server"
)

// faultsEnvVar names the fault-injection spec variable for log lines.
const faultsEnvVar = "CV_FAULTS"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cvserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cvserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxUpload := fs.Int64("max-upload", server.MaxFrameBytes, "largest accepted frame/tar body in bytes (oversized uploads get HTTP 413)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent validation requests admitted (0 = default)")
	maxQueue := fs.Int("queue", 0, "validation requests allowed to wait for a slot (0 = default)")
	queueWait := fs.Duration("queue-wait", 0, "longest a queued validation request waits before shedding (0 = default)")
	validateTimeout := fs.Duration("validate-timeout", 0, "per-request validation timeout (0 = default)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive server-side failures that open the circuit breaker (0 = default)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long the breaker stays open before probing (0 = default)")
	parallelism := fs.Int("parallelism", 0, "intra-entity evaluation parallelism (0 = GOMAXPROCS, 1 = serial)")
	parseCacheSize := fs.Int("parse-cache", configvalidator.DefaultParseCacheSize, "content-addressed parse cache capacity in files (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxUpload <= 0 {
		return fmt.Errorf("-max-upload must be positive")
	}
	inj, err := configvalidator.FaultsFromEnv()
	if err != nil {
		return err
	}
	vopts := []configvalidator.Option{
		configvalidator.WithTelemetry(configvalidator.NewCollector()),
		configvalidator.WithParallelism(*parallelism),
	}
	if *parseCacheSize > 0 {
		vopts = append(vopts, configvalidator.WithParseCache(configvalidator.NewParseCache(*parseCacheSize)))
	}
	if inj != nil {
		fmt.Fprintf(os.Stderr, "cvserver: fault injection armed via %s\n", faultsEnvVar)
		vopts = append(vopts, configvalidator.WithFaults(inj))
	}
	validator, err := configvalidator.New(vopts...)
	if err != nil {
		return err
	}
	s, err := server.New(validator)
	if err != nil {
		return err
	}
	s.MaxUploadBytes = *maxUpload
	s.Limits = server.Limits{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueWait:        *queueWait,
		ValidateTimeout:  *validateTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute, // frames can be large
		WriteTimeout:      5 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- httpServer.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "cvserver listening on %s (metrics at /metrics)\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "received %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Drain first: /readyz flips not-ready and new validations are
		// rejected while admitted ones run to completion; then close the
		// listener and remaining (cheap) connections.
		if err := s.BeginDrain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "cvserver: drain: %v\n", err)
		}
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}
