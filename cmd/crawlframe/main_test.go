package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"configvalidator/internal/frames"
)

func TestCaptureDemoHost(t *testing.T) {
	out := filepath.Join(t.TempDir(), "host.frame")
	if err := run([]string{"-demo", "host", "-seed", "4", "-out", out, "-roots", "/etc"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	frame, err := frames.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Name != "demo-host" || frame.NumFiles() == 0 {
		t.Errorf("frame = %s, %d files", frame.Name, frame.NumFiles())
	}
	// The captured entity serves files for validation.
	ent := frame.Entity()
	data, err := ent.ReadFile("/etc/ssh/sshd_config")
	if err != nil || !strings.Contains(string(data), "PermitRootLogin") {
		t.Errorf("sshd_config from frame: %q, %v", data, err)
	}
}

func TestCaptureDemoImage(t *testing.T) {
	out := filepath.Join(t.TempDir(), "img.frame")
	if err := run([]string{"-demo", "image", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	frame, err := frames.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if frame.EntityType.String() != "image" {
		t.Errorf("type = %v", frame.EntityType)
	}
}

func TestCaptureOSDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "etc"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "etc", "sysctl.conf"), []byte("net.ipv4.ip_forward = 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "os.frame")
	if err := run([]string{"-host", dir, "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	frame, err := frames.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumFiles() != 1 {
		t.Errorf("files = %d", frame.NumFiles())
	}
}

func TestErrorFlags(t *testing.T) {
	cases := [][]string{
		nil,
		{"-demo", "container"},
		{"-demo", "host", "-host", "/x"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}
