// Command crawlframe captures a system configuration frame: a serialized
// snapshot of an entity's configuration files, metadata, packages, and
// runtime features that can later be validated offline ("touchless"
// validation, paper §5 and [24]).
//
//	crawlframe -host / -out host.frame
//	crawlframe -host /srv/chroot -roots /etc,/opt/app -out app.frame
//	crawlframe -demo host -out demo.frame
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
	"configvalidator/internal/fsutil"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crawlframe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crawlframe", flag.ContinueOnError)
	var (
		hostDir   = fs.String("host", "", "capture the filesystem rooted at this directory")
		demo      = fs.String("demo", "", "capture a generated demo entity: host or image")
		misconfig = fs.Float64("misconfig", 0.3, "misconfiguration rate for -demo")
		seed      = fs.Int64("seed", 1, "seed for -demo")
		rootsFlag = fs.String("roots", "/etc", "comma-separated directories to capture")
		outPath   = fs.String("out", "", "output frame file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ent entity.Entity
	switch {
	case *hostDir != "" && *demo != "":
		return fmt.Errorf("-host and -demo are mutually exclusive")
	case *hostDir != "":
		name, err := os.Hostname()
		if err != nil {
			name = "host"
		}
		ent = entity.NewOSDir(name, entity.TypeHost, *hostDir)
	case *demo == "host":
		m, _ := fixtures.UbuntuHost("demo-host", fixtures.Profile{Seed: *seed, MisconfigRate: *misconfig})
		ent = m
	case *demo == "image":
		img, _ := fixtures.Image("demo-app", "v1", fixtures.Profile{Seed: *seed, MisconfigRate: *misconfig})
		ent = img.Entity()
	case *demo != "":
		return fmt.Errorf("unknown demo entity %q (want host or image)", *demo)
	default:
		return fmt.Errorf("one of -host or -demo is required")
	}

	var roots []string
	for _, r := range strings.Split(*rootsFlag, ",") {
		if r = strings.TrimSpace(r); r != "" {
			roots = append(roots, r)
		}
	}
	frame, err := frames.Capture(ent, roots, time.Now())
	if err != nil {
		return err
	}

	if *outPath != "" {
		// Atomic replace: a crash (or a watcher reading mid-write) must
		// never observe a torn frame where a previous good one was.
		if err := fsutil.WriteAtomic(*outPath, 0o644, frame.Write); err != nil {
			return err
		}
	} else if err := frame.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "captured %d files, %d packages from %s (%s)\n",
		frame.NumFiles(), frame.NumPackages(), frame.Name, frame.EntityType)
	return nil
}
