// Command cvworker runs a ConfigValidator shard-scan worker: the remote
// half of distributed fleet validation. A coordinator (cvserver
// -coordinate) ships shards of configuration frames to POST
// /v1/shard/scan; the worker scans them through the ordinary fleet
// pipeline and streams back heartbeats and per-entity results under the
// coordinator's lease.
//
//	cvworker -addr :9101 -journal-dir /var/lib/cv/segments
//
// With -journal-dir set, each shard writes a durable journal segment; a
// shard re-leased to this worker after a lease revocation replays the
// results it already completed instead of re-scanning them. The segment
// files carry an exclusive flock, so a re-lease that races a still-dying
// previous request gets HTTP 409 and the coordinator retries — no two
// requests can ever append to one segment concurrently.
//
// The worker serves the full validation API (it is a cvserver that also
// scans shards), so /readyz, /metrics, admission limits, the circuit
// breaker, and SIGTERM draining all behave identically. Coordinators
// probe /readyz to decide when a failed worker may take leases again.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/server"
)

// faultsEnvVar names the fault-injection spec variable for log lines.
const faultsEnvVar = "CV_FAULTS"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cvworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cvworker", flag.ContinueOnError)
	addr := fs.String("addr", ":9101", "listen address")
	journalDir := fs.String("journal-dir", "", "directory for per-shard journal segments (empty disables worker-side resume)")
	shardWorkers := fs.Int("shard-workers", 0, "concurrent entity scans per shard (0 = GOMAXPROCS)")
	scanDelay := fs.Duration("scan-delay", 0, "artificial per-entity delay, for chaos drills and CI smokes only")
	maxUpload := fs.Int64("max-upload", server.MaxFrameBytes, "largest accepted request body in bytes (oversized uploads get HTTP 413)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent validation/shard requests admitted (0 = default)")
	maxQueue := fs.Int("queue", 0, "requests allowed to wait for a slot (0 = default)")
	queueWait := fs.Duration("queue-wait", 0, "longest a queued request waits before shedding (0 = default)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive server-side failures that open the circuit breaker (0 = default)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "how long the breaker stays open before probing (0 = default)")
	parallelism := fs.Int("parallelism", 0, "intra-entity evaluation parallelism (0 = GOMAXPROCS, 1 = serial)")
	parseCacheSize := fs.Int("parse-cache", configvalidator.DefaultParseCacheSize, "content-addressed parse cache capacity in files (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxUpload <= 0 {
		return fmt.Errorf("-max-upload must be positive")
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return fmt.Errorf("create journal dir: %w", err)
		}
	}
	inj, err := configvalidator.FaultsFromEnv()
	if err != nil {
		return err
	}
	vopts := []configvalidator.Option{
		configvalidator.WithTelemetry(configvalidator.NewCollector()),
		configvalidator.WithParallelism(*parallelism),
	}
	if *parseCacheSize > 0 {
		vopts = append(vopts, configvalidator.WithParseCache(configvalidator.NewParseCache(*parseCacheSize)))
	}
	if inj != nil {
		fmt.Fprintf(os.Stderr, "cvworker: fault injection armed via %s\n", faultsEnvVar)
		vopts = append(vopts, configvalidator.WithFaults(inj))
	}
	validator, err := configvalidator.New(vopts...)
	if err != nil {
		return err
	}
	s, err := server.New(validator)
	if err != nil {
		return err
	}
	s.MaxUploadBytes = *maxUpload
	s.ShardWorkers = *shardWorkers
	s.ShardJournalDir = *journalDir
	s.ShardScanDelay = *scanDelay
	s.Limits = server.Limits{
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueWait:        *queueWait,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute, // shards can be large
		// No WriteTimeout: shard result streams are long-lived by design;
		// the coordinator's lease watchdog bounds them instead.
	}

	errCh := make(chan error, 1)
	go func() {
		errCh <- httpServer.ListenAndServe()
	}()
	fmt.Fprintf(os.Stderr, "cvworker listening on %s (shards at /v1/shard/scan, metrics at /metrics)\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "received %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Drain: /readyz flips not-ready so coordinators stop leasing to
		// this worker, in-flight shards finish streaming, then the listener
		// closes. A coordinator that leases during the race gets 503 and
		// reassigns elsewhere.
		if err := s.BeginDrain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "cvworker: drain: %v\n", err)
		}
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}
