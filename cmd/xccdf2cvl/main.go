// Command xccdf2cvl imports an XCCDF benchmark and its OVAL definitions
// into CVL rules — the migration path from the XML specification formats
// the paper compares against into the declarative language.
//
//	xccdf2cvl -benchmark bench.xml -oval oval.xml -out rules.yaml
//	xccdf2cvl -demo                # convert the generated 40-check benchmark
//
// Checks that cannot be represented faithfully are listed on stderr with
// the reason, never silently approximated.
package main

import (
	"flag"
	"fmt"
	"os"

	"configvalidator/internal/baseline"
	"configvalidator/internal/baseline/xccdf"
	"configvalidator/internal/convert"
	"configvalidator/internal/cvl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xccdf2cvl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xccdf2cvl", flag.ContinueOnError)
	var (
		benchPath = fs.String("benchmark", "", "XCCDF benchmark XML file")
		ovalPath  = fs.String("oval", "", "OVAL definitions XML file")
		outPath   = fs.String("out", "", "output CVL file (default stdout)")
		demo      = fs.Bool("demo", false, "convert the generated 40-check CIS benchmark instead of input files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var benchXML, ovalXML []byte
	var err error
	switch {
	case *demo:
		benchXML, ovalXML, err = xccdf.Generate("cis-ubuntu-40", baseline.CIS40())
		if err != nil {
			return err
		}
	case *benchPath != "" && *ovalPath != "":
		if benchXML, err = os.ReadFile(*benchPath); err != nil {
			return err
		}
		if ovalXML, err = os.ReadFile(*ovalPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -demo or both -benchmark and -oval are required")
	}

	res, err := convert.XCCDFToCVL(benchXML, ovalXML)
	if err != nil {
		return err
	}
	for _, s := range res.Skipped {
		fmt.Fprintf(os.Stderr, "skipped %s: %s\n", s.RuleID, s.Reason)
	}
	out, err := cvl.FormatRuleFile("", res.Rules)
	if err != nil {
		return err
	}
	if *outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %d rules (%d skipped) to %s\n", len(res.Rules), len(res.Skipped), *outPath)
	return nil
}
