package main

import (
	"os"
	"path/filepath"
	"testing"

	"configvalidator/internal/cvl"
)

func TestDemoConversion(t *testing.T) {
	out := filepath.Join(t.TempDir(), "imported.yaml")
	if err := run([]string{"-demo", "-out", out}); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := cvl.ParseRuleFile(out, content)
	if err != nil {
		t.Fatalf("imported file does not parse: %v", err)
	}
	if len(rf.Rules) != 30 {
		t.Errorf("rules = %d", len(rf.Rules))
	}
}

func TestFileInputs(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.xml")
	oval := filepath.Join(dir, "oval.xml")
	if err := os.WriteFile(bench, []byte(`<Benchmark id="b"></Benchmark>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(oval, []byte(`<oval_definitions></oval_definitions>`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.yaml")
	if err := run([]string{"-benchmark", bench, "-oval", oval, "-out", out}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorFlags(t *testing.T) {
	cases := [][]string{
		nil,
		{"-benchmark", "/only/one.xml"},
		{"-benchmark", "/no/file.xml", "-oval", "/no/file2.xml"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}
