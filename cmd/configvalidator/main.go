// Command configvalidator scans an entity for misconfigurations using CVL
// rules.
//
//	configvalidator -host /path/to/root            scan a host filesystem
//	configvalidator -frame snapshot.frame          scan an offline frame
//	configvalidator -demo host                     scan a generated demo entity
//	configvalidator -demo image -misconfig 0.5     ...with injected issues
//
// By default the built-in 135-rule library (11 targets) runs; -manifest
// selects a custom rule set, -target restricts to one manifest entity, and
// -tags filters rules by compliance tag.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	configvalidator "configvalidator"
	"configvalidator/internal/cvl"
	"configvalidator/internal/dockersim"
	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "configvalidator:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("configvalidator", flag.ContinueOnError)
	var (
		hostDir   = fs.String("host", "", "scan the filesystem rooted at this directory as a host")
		frameFile = fs.String("frame", "", "scan a configuration frame file (touchless validation)")
		tarFile   = fs.String("tar", "", "scan a tar archive (e.g. a docker export) as a container filesystem")
		demo      = fs.String("demo", "", "scan a generated demo entity: host, image, or container")
		misconfig = fs.Float64("misconfig", 0.3, "misconfiguration rate for -demo entities")
		seed      = fs.Int64("seed", 1, "seed for -demo entities")
		manifest  = fs.String("manifest", "", "custom manifest file (rule files resolve relative to it)")
		target    = fs.String("target", "", "validate only this manifest entity (e.g. sshd)")
		format    = fs.String("format", "text", "output format: text, json, or junit")
		showPass  = fs.Bool("show-passing", false, "include passing checks in text output")
		verbose   = fs.Bool("verbose", false, "include N/A results and per-check details")
		tags      = fs.String("tags", "", "comma-separated tag filter, e.g. '#cis,#ssl'")
		failOn    = fs.Bool("fail-on-findings", false, "exit nonzero when any check fails")
		suggest   = fs.Bool("suggest-fixes", false, "print proposed configuration edits for remediable failures")
		extended  = fs.Bool("extended", false, "include the extended rule pack (passwd, group, limits, cron)")
		ckpt      = fs.String("checkpoint", "", "durable result journal: replay the journaled report when the entity's config is unchanged, else scan and append")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ent, err := resolveEntity(*hostDir, *frameFile, *tarFile, *demo, *seed, *misconfig)
	if err != nil {
		return err
	}
	// Synthesize runtime features (mysql.ssl, ...) from configuration when
	// the scanned artifact cannot answer live queries.
	ent = configvalidator.WithRuntimePlugins(ent)

	opts := []configvalidator.Option{}
	if *extended {
		opts = append(opts, configvalidator.WithExtendedRules())
	}
	if *manifest != "" {
		m, reader, err := loadManifest(*manifest)
		if err != nil {
			return err
		}
		opts = append(opts, configvalidator.WithManifest(m, reader))
	}
	v, err := configvalidator.New(opts...)
	if err != nil {
		return err
	}

	// With -checkpoint, an unchanged entity replays its journaled report
	// instead of re-scanning (idempotent re-validation); a changed or
	// never-seen one scans and appends.
	var (
		report *configvalidator.Report
		jrnl   *configvalidator.Journal
		digest string
	)
	if *ckpt != "" {
		jrnl, err = configvalidator.OpenJournal(*ckpt, configvalidator.JournalOptions{
			OnDegraded: func(derr error) {
				fmt.Fprintf(os.Stderr, "configvalidator: checkpoint journal degraded, result not persisted (validation continues): %v\n", derr)
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = jrnl.Close() }()
		if d, derr := v.ConfigDigest(ent, *target); derr == nil {
			digest = d
			if rec, ok := jrnl.Lookup(ent.Name(), d); ok {
				report = rec.Report.Report()
				fmt.Fprintf(os.Stderr, "configvalidator: %s unchanged, replaying journaled result\n", ent.Name())
			}
		}
	}
	if report == nil {
		if *target != "" {
			report, err = v.ValidateTarget(ent, *target)
		} else {
			report, err = v.Validate(ent)
		}
		if err != nil {
			return err
		}
		if jrnl != nil {
			if aerr := jrnl.Append(configvalidator.JournalRecord{
				Entity: ent.Name(),
				Digest: digest,
				Report: configvalidator.NewJournalReport(report),
			}); aerr != nil {
				fmt.Fprintln(os.Stderr, "configvalidator: checkpoint append:", aerr)
			}
		}
	}

	outOpts := configvalidator.OutputOptions{
		ShowPassing: *showPass,
		Verbose:     *verbose,
	}
	if *tags != "" {
		outOpts.TagFilter = strings.Split(*tags, ",")
	}
	switch *format {
	case "text":
		err = configvalidator.WriteText(out, report, outOpts)
	case "json":
		err = configvalidator.WriteJSON(out, report, outOpts)
	case "junit":
		err = configvalidator.WriteJUnit(out, report, outOpts)
	default:
		return fmt.Errorf("unknown format %q (want text, json, or junit)", *format)
	}
	if err != nil {
		return err
	}
	if *suggest {
		proposals := v.ProposeFixes(ent, report)
		if len(proposals) == 0 {
			fmt.Fprintln(out, "\nNo automatically remediable failures.")
		}
		for _, p := range proposals {
			fmt.Fprintf(out, "\n--- suggested fix: %s ---\n", p.Description)
			fmt.Fprintf(out, "%s", p.Fixed)
		}
	}
	if *failOn && report.Counts()[configvalidator.StatusFail] > 0 {
		return fmt.Errorf("%d checks failed", report.Counts()[configvalidator.StatusFail])
	}
	return nil
}

func resolveEntity(hostDir, frameFile, tarFile, demo string, seed int64, misconfig float64) (configvalidator.Entity, error) {
	selected := 0
	for _, s := range []string{hostDir, frameFile, tarFile, demo} {
		if s != "" {
			selected++
		}
	}
	if selected != 1 {
		return nil, fmt.Errorf("exactly one of -host, -frame, -tar, or -demo is required")
	}
	switch {
	case tarFile != "":
		f, err := os.Open(tarFile)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		return entity.NewFromTar(filepath.Base(tarFile), entity.TypeContainer, f)
	case hostDir != "":
		name, err := os.Hostname()
		if err != nil {
			name = "host"
		}
		return entity.NewOSDir(name, entity.TypeHost, hostDir), nil
	case frameFile != "":
		f, err := os.Open(frameFile)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		frame, err := frames.Read(f)
		if err != nil {
			return nil, err
		}
		return frame.Entity(), nil
	default:
		profile := fixtures.Profile{Seed: seed, MisconfigRate: misconfig}
		switch demo {
		case "host":
			ent, _ := fixtures.UbuntuHost("demo-host", profile)
			return ent, nil
		case "image":
			img, _ := fixtures.Image("demo-app", "v1", profile)
			return img.Entity(), nil
		case "container":
			img, _ := fixtures.Image("demo-app", "v1", profile)
			reg := dockersim.NewRegistry()
			reg.Push(img)
			c, err := reg.Run("demo-container", img.Ref())
			if err != nil {
				return nil, err
			}
			return c.Entity(), nil
		default:
			return nil, fmt.Errorf("unknown demo entity %q (want host, image, or container)", demo)
		}
	}
}

// loadManifest reads a manifest from disk; rule files referenced by it are
// resolved relative to the manifest's directory.
func loadManifest(path string) (*cvl.Manifest, cvl.FileReader, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	m, err := cvl.ParseManifest(path, content)
	if err != nil {
		return nil, nil, err
	}
	base := filepath.Dir(path)
	reader := func(p string) ([]byte, error) {
		return os.ReadFile(filepath.Join(base, filepath.FromSlash(p)))
	}
	return m, reader, nil
}
