package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"configvalidator/internal/fixtures"
	"configvalidator/internal/journal"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestDemoHostTextOutput(t *testing.T) {
	out, err := runCLI(t, "-demo", "host", "-misconfig", "0", "-seed", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Entity: demo-host (host)") {
		t.Errorf("output:\n%s", out)
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("clean demo host failed checks:\n%s", out)
	}
}

func TestDemoImageJSONOutput(t *testing.T) {
	out, err := runCLI(t, "-demo", "image", "-misconfig", "0.5", "-seed", "3", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Entity  string         `json:"entity"`
		Summary map[string]int `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Entity != "demo-app:v1" || decoded.Summary["fail"] == 0 {
		t.Errorf("decoded = %+v", decoded)
	}
}

// TestCheckpointReplaysUnchangedEntity pins the -checkpoint contract: the
// second run of an unchanged entity replays the journaled report (no new
// journal record) and renders byte-identically.
func TestCheckpointReplaysUnchangedEntity(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "scan.cvj")
	args := []string{"-demo", "host", "-misconfig", "0.5", "-seed", "4", "-format", "json", "-checkpoint", ckpt}
	first, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := runCLI(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("replayed output differs from scanned output:\n--- first\n%s\n--- second\n%s", first, second)
	}
	j, err := journal.Open(ckpt, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	// Release the single-writer flock before the next CLI run opens the
	// same checkpoint.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 1 {
		t.Errorf("journal holds %d records, want 1 (second run must not re-append)", st.Replayed)
	}

	// A different entity config must bypass the journaled record.
	changed, err := runCLI(t, "-demo", "host", "-misconfig", "0", "-seed", "4", "-format", "json", "-checkpoint", ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if changed == first {
		t.Error("changed entity replayed a stale journaled report")
	}
}

func TestJUnitOutput(t *testing.T) {
	out, err := runCLI(t, "-demo", "host", "-misconfig", "1", "-seed", "2", "-target", "sshd", "-format", "junit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<testsuites") || !strings.Contains(out, `failure message=`) {
		t.Errorf("junit output:\n%s", out)
	}
}

func TestTargetRestriction(t *testing.T) {
	out, err := runCLI(t, "-demo", "host", "-misconfig", "1", "-target", "sshd", "-show-passing")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "sysctl/") || !strings.Contains(out, "sshd/") {
		t.Errorf("target restriction leaked:\n%s", out)
	}
}

func TestTagFilter(t *testing.T) {
	out, err := runCLI(t, "-demo", "host", "-misconfig", "1", "-tags", "#ossg", "-show-passing")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "sshd/PermitRootLogin") {
		t.Errorf("tag filter leaked CIS rules:\n%s", out)
	}
}

func TestSuggestFixes(t *testing.T) {
	out, err := runCLI(t, "-demo", "host", "-misconfig", "1", "-seed", "2", "-target", "sysctl", "-suggest-fixes")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "suggested fix:") || !strings.Contains(out, "net.ipv4.ip_forward = 0") {
		t.Errorf("fixes missing:\n%s", out)
	}
}

func TestFailOnFindings(t *testing.T) {
	if _, err := runCLI(t, "-demo", "host", "-misconfig", "1", "-fail-on-findings"); err == nil {
		t.Error("expected nonzero for dirty host")
	}
	if _, err := runCLI(t, "-demo", "host", "-misconfig", "0", "-fail-on-findings"); err != nil {
		t.Errorf("clean host: %v", err)
	}
}

func TestHostDirScan(t *testing.T) {
	dir := t.TempDir()
	sshDir := filepath.Join(dir, "etc", "ssh")
	if err := os.MkdirAll(sshDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sshDir, "sshd_config"), []byte("PermitRootLogin yes\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-host", dir, "-target", "sshd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PermitRootLogin") || !strings.Contains(out, "[FAIL]") {
		t.Errorf("host scan:\n%s", out)
	}
}

func TestCustomManifest(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "manifest.yaml"), "sshd:\n  config_search_paths: [/etc/ssh]\n  cvl_file: sshd.yaml\n")
	writeFile(t, filepath.Join(dir, "sshd.yaml"), "config_name: Port\nconfig_path: [\"\"]\npreferred_value: [\"22\"]\n")
	out, err := runCLI(t, "-demo", "host", "-misconfig", "0", "-manifest", filepath.Join(dir, "manifest.yaml"), "-show-passing")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sshd/Port") || !strings.Contains(out, "1 total") {
		t.Errorf("custom manifest:\n%s", out)
	}
}

func TestExtendedPackFlag(t *testing.T) {
	out, err := runCLI(t, "-demo", "host", "-misconfig", "0", "-extended", "-show-passing")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"passwd/only_root_uid0", "cron/cron_path_set", "limits/core_dumps_restricted"} {
		if !strings.Contains(out, want) {
			t.Errorf("extended output missing %q", want)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("clean host failed extended checks:\n%s", out)
	}
}

func TestTarScan(t *testing.T) {
	img, _ := fixtures.Image("tarred-app", "v1", fixtures.Profile{Seed: 5, MisconfigRate: 1})
	path := filepath.Join(t.TempDir(), "app.tar")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.ExportTar(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-tar", path, "-target", "sshd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[FAIL]") || !strings.Contains(out, "app.tar (container)") {
		t.Errorf("tar scan:\n%s", out)
	}
}

func TestErrorCases(t *testing.T) {
	cases := [][]string{
		{},                                // no entity
		{"-demo", "host", "-host", "/x"},  // two entities
		{"-demo", "moonbase"},             // unknown demo
		{"-demo", "host", "-format", "x"}, // bad format
		{"-frame", "/no/such/frame"},      // missing frame
		{"-demo", "host", "-target", "k8s"},
		{"-demo", "host", "-manifest", "/no/such/manifest.yaml"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
