// Command cvwatch continuously validates an entity and reports drift — the
// paper's production cadence ("validating on the order of tens of
// thousands of containers and images daily") reduced to one entity: scan
// on an interval, compare with the previous scan, and print only what
// changed.
//
//	cvwatch -host / -interval 1h
//	cvwatch -frame latest.frame -interval 10m    # re-reads the file each tick
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/entity"
	"configvalidator/internal/frames"
	"configvalidator/internal/output"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvwatch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvwatch", flag.ContinueOnError)
	var (
		hostDir   = fs.String("host", "", "watch the filesystem rooted at this directory")
		frameFile = fs.String("frame", "", "watch a frame file (re-read each tick)")
		interval  = fs.Duration("interval", time.Hour, "scan interval")
		maxScans  = fs.Int("max-scans", 0, "stop after N scans (0 = run until interrupted)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*hostDir == "") == (*frameFile == "") {
		return fmt.Errorf("exactly one of -host or -frame is required")
	}
	if *interval <= 0 {
		return fmt.Errorf("interval must be positive")
	}
	v, err := configvalidator.New()
	if err != nil {
		return err
	}
	load := func() (configvalidator.Entity, error) {
		if *hostDir != "" {
			return entity.NewOSDir("watched-host", entity.TypeHost, *hostDir), nil
		}
		f, err := os.Open(*frameFile)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		frame, err := frames.Read(f)
		if err != nil {
			return nil, err
		}
		return frame.Entity(), nil
	}

	scan := func() (*configvalidator.Report, error) {
		ent, err := load()
		if err != nil {
			return nil, err
		}
		return v.Validate(ent)
	}

	var previous *configvalidator.Report
	scans := 0
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		report, err := scan()
		if err != nil {
			return err
		}
		scans++
		counts := report.Counts()
		fmt.Fprintf(out, "[scan %d] %s: %d pass, %d fail, %d n/a\n",
			scans, report.EntityName,
			counts[configvalidator.StatusPass],
			counts[configvalidator.StatusFail],
			counts[configvalidator.StatusNotApplicable])
		if previous != nil {
			drift := output.DiffReports(previous, report)
			if !drift.Empty() {
				if err := output.WriteDrift(out, drift); err != nil {
					return err
				}
			}
		}
		previous = report
		if *maxScans > 0 && scans >= *maxScans {
			return nil
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "cvwatch: stopped")
			return nil
		case <-ticker.C:
		}
	}
}
