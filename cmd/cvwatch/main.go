// Command cvwatch continuously validates an entity and reports drift — the
// paper's production cadence ("validating on the order of tens of
// thousands of containers and images daily") reduced to one entity: scan
// on an interval, compare with the previous scan, and print only what
// changed.
//
//	cvwatch -host / -interval 1h
//	cvwatch -frame latest.frame -interval 10m    # re-reads the file each tick
//	cvwatch -host / -metrics-addr :9100          # Prometheus metrics sidecar
//
// Each scan appends a one-line telemetry progress digest to stderr; with
// -metrics-addr the same counters are served at GET /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/entity"
	"configvalidator/internal/frames"
	"configvalidator/internal/fsutil"
	"configvalidator/internal/output"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cvwatch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("cvwatch", flag.ContinueOnError)
	var (
		hostDir     = fs.String("host", "", "watch the filesystem rooted at this directory")
		frameFile   = fs.String("frame", "", "watch a frame file (re-read each tick)")
		interval    = fs.Duration("interval", time.Hour, "scan interval")
		maxScans    = fs.Int("max-scans", 0, "stop after N scans (0 = run until interrupted)")
		metricsAddr = fs.String("metrics-addr", "", "serve GET /metrics on this address (empty = disabled)")
		checkpoint  = fs.String("checkpoint", "", "durable baseline journal: drift survives restarts (created if missing)")
		maxFails    = fs.Int("max-consecutive-failures", 3, "exit after this many consecutive scan failures (0 = keep trying forever)")
		parallelism = fs.Int("parallelism", 0, "intra-entity evaluation parallelism (0 = GOMAXPROCS, 1 = serial)")
		cacheSize   = fs.Int("parse-cache", configvalidator.DefaultParseCacheSize, "content-addressed parse cache capacity in files (0 = disabled); repeated scans of an unchanged entity skip re-parsing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*hostDir == "") == (*frameFile == "") {
		return fmt.Errorf("exactly one of -host or -frame is required")
	}
	if *interval <= 0 {
		return fmt.Errorf("interval must be positive")
	}
	collector := configvalidator.NewCollector()
	vopts := []configvalidator.Option{
		configvalidator.WithTelemetry(collector),
		configvalidator.WithParallelism(*parallelism),
	}
	if *cacheSize > 0 {
		vopts = append(vopts, configvalidator.WithParseCache(configvalidator.NewParseCache(*cacheSize)))
	}
	inj, err := configvalidator.FaultsFromEnv()
	if err != nil {
		return err
	}
	if inj != nil {
		fmt.Fprintln(errOut, "cvwatch: fault injection armed via CV_FAULTS")
		vopts = append(vopts, configvalidator.WithFaults(inj))
		// Atomic writes (journal compaction) run outside the validator;
		// arm them process-wide so disk-pressure drills cover them too.
		fsutil.ArmFaults(inj)
	}
	v, err := configvalidator.New(vopts...)
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		shutdown, err := serveMetrics(*metricsAddr, collector, errOut)
		if err != nil {
			return err
		}
		defer shutdown()
	}
	load := func() (configvalidator.Entity, error) {
		if *hostDir != "" {
			return entity.NewOSDir("watched-host", entity.TypeHost, *hostDir), nil
		}
		f, err := os.Open(*frameFile)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		frame, err := frames.Read(f)
		if err != nil {
			return nil, err
		}
		return frame.Entity(), nil
	}

	scan := func() (*configvalidator.Report, error) {
		ent, err := load()
		if err != nil {
			return nil, err
		}
		return v.Validate(ent)
	}

	var previous *configvalidator.Report

	// With a checkpoint journal the drift baseline survives restarts: the
	// latest journaled report is restored before the first scan, so the
	// first post-restart drift is computed against the last pre-restart
	// state instead of silently resetting. Startup compaction keeps the
	// journal at one record per watched entity.
	var jrnl *configvalidator.Journal
	if *checkpoint != "" {
		jrnl, err = configvalidator.OpenJournal(*checkpoint, configvalidator.JournalOptions{
			Metrics: collector,
			Faults:  inj,
			OnDegraded: func(derr error) {
				fmt.Fprintf(errOut, "cvwatch: checkpoint journal degraded, baseline no longer persisted (watch continues): %v\n", derr)
			},
			OnRecovered: func() {
				fmt.Fprintf(errOut, "cvwatch: checkpoint journal recovered, baseline persistence resumed\n")
			},
		})
		if err != nil {
			return err
		}
		defer func() { _ = jrnl.Close() }()
		if rec, ok := jrnl.Latest(); ok {
			previous = rec.Report.Report()
			fmt.Fprintf(errOut, "cvwatch: baseline for %s restored from %s\n", rec.Entity, *checkpoint)
		}
		// Startup compaction is an optimization; a full disk must not kill
		// the watch. The journal just replays more records next restart.
		if cerr := jrnl.Compact(); cerr != nil {
			fmt.Fprintf(errOut, "cvwatch: checkpoint compaction skipped: %v\n", cerr)
		}
	}

	scans := 0
	consecutiveFailures := 0
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	// wait blocks until the next tick; false means the watch was stopped.
	wait := func() bool {
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "cvwatch: stopped")
			return false
		case <-ticker.C:
			return true
		}
	}
	for {
		report, err := scan()
		if err != nil {
			// A transient failure (frame mid-rewrite, unreachable root)
			// must not kill the watch and must not reset the baseline:
			// log it, skip the tick, and only give up after maxFails in a
			// row.
			consecutiveFailures++
			fmt.Fprintf(errOut, "cvwatch: scan failed (%d consecutive): %v\n", consecutiveFailures, err)
			if *maxFails > 0 && consecutiveFailures >= *maxFails {
				return fmt.Errorf("%d consecutive scan failures, last: %w", consecutiveFailures, err)
			}
			if !wait() {
				return nil
			}
			continue
		}
		consecutiveFailures = 0
		scans++
		counts := report.Counts()
		fmt.Fprintf(out, "[scan %d] %s: %d pass, %d fail, %d n/a",
			scans, report.EntityName,
			counts[configvalidator.StatusPass],
			counts[configvalidator.StatusFail],
			counts[configvalidator.StatusNotApplicable])
		if n := counts[configvalidator.StatusDegraded]; n > 0 {
			fmt.Fprintf(out, ", %d degraded", n)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(errOut, "cvwatch progress: %s\n", collector.Snapshot())
		if previous != nil {
			drift := output.DiffReports(previous, report)
			if !drift.Empty() {
				if err := output.WriteDrift(out, drift); err != nil {
					return err
				}
			}
		}
		previous = report
		if jrnl != nil {
			if aerr := jrnl.Append(configvalidator.JournalRecord{
				Entity: report.EntityName,
				Report: configvalidator.NewJournalReport(report),
			}); aerr != nil {
				fmt.Fprintf(errOut, "cvwatch: checkpoint append: %v\n", aerr)
			}
		}
		if *maxScans > 0 && scans >= *maxScans {
			return nil
		}
		if !wait() {
			return nil
		}
	}
}

// serveMetrics exposes the collector at GET /metrics on addr and returns a
// shutdown function.
func serveMetrics(addr string, collector *configvalidator.Collector, errOut io.Writer) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = collector.WritePrometheus(w)
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(errOut, "cvwatch metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(errOut, "cvwatch: metrics server: %v\n", err)
		}
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(errOut, "cvwatch: metrics server shutdown: %v\n", err)
		}
	}, nil
}
