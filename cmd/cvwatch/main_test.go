package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
)

func writeFrameFile(t *testing.T, path string, misconfig float64, seed int64) {
	t.Helper()
	host, _ := fixtures.SystemHost("watched", fixtures.Profile{Seed: seed, MisconfigRate: misconfig})
	frame, err := frames.Capture(host, nil, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if err := frame.Write(f); err != nil {
		t.Fatal(err)
	}
}

func TestWatchDetectsDriftBetweenScans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "watched.frame")
	writeFrameFile(t, path, 0, 1)

	// Swap the frame contents between the first and second scan.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(150 * time.Millisecond)
		writeFrameFile(t, path, 1, 1)
	}()

	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-frame", path, "-interval", "300ms", "-max-scans", "2",
	}, &out, &errOut)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "[scan 1]") || !strings.Contains(text, "[scan 2]") {
		t.Fatalf("scans missing:\n%s", text)
	}
	if !strings.Contains(text, "REGRESSIONS") {
		t.Errorf("drift not reported:\n%s", text)
	}
}

func TestWatchStableFrameNoDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stable.frame")
	writeFrameFile(t, path, 0.5, 2)
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"-frame", path, "-interval", "50ms", "-max-scans", "3"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "REGRESSIONS") {
		t.Errorf("phantom drift:\n%s", out.String())
	}
}

func TestWatchCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.frame")
	writeFrameFile(t, path, 0, 3)
	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-frame", path, "-interval", "1h"}, &out, &errOut)
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on cancellation")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestWatchFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"-host", "/x", "-frame", "/y"},
		{"-frame", "/z", "-interval", "-1s"},
		{"-frame", "/no/such.frame", "-max-scans", "1", "-max-consecutive-failures", "1"},
	} {
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}

func TestWatchProgressLineOnStderr(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.frame")
	writeFrameFile(t, path, 0.5, 4)
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{"-frame", path, "-interval", "50ms", "-max-scans", "2"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	text := errOut.String()
	if strings.Count(text, "cvwatch progress:") != 2 {
		t.Fatalf("want one progress line per scan on stderr, got:\n%s", text)
	}
	if !strings.Contains(text, "scans=2") {
		t.Errorf("progress line missing scan count:\n%s", text)
	}
	if strings.Contains(out.String(), "cvwatch progress:") {
		t.Error("progress lines leaked onto stdout")
	}
}

func TestWatchMetricsEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.frame")
	writeFrameFile(t, path, 0, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-frame", path, "-interval", "1h", "-metrics-addr", "127.0.0.1:0",
		}, &out, &errOut)
	}()

	// Wait for the announced listener address, then scrape it mid-run.
	re := regexp.MustCompile(`http://([0-9.:]+)/metrics`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never announced:\n%s", errOut.String())
		}
		if m := re.FindStringSubmatch(errOut.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	var body string
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		body = string(raw)
		if strings.Contains(body, "configvalidator_scans_total 1") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(body, "configvalidator_scans_total 1") {
		t.Errorf("metrics missing scan counter:\n%s", body)
	}
	if !strings.Contains(body, "configvalidator_scan_duration_seconds_count 1") {
		t.Errorf("metrics missing latency histogram:\n%s", body)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchSurvivesBrieflyUnreadableFrame pins the transient-failure
// contract: a frame file that disappears for a few ticks is logged and
// skipped — the watch keeps running, keeps its baseline, and resumes
// scanning when the file returns.
func TestWatchSurvivesBrieflyUnreadableFrame(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.frame")
	writeFrameFile(t, path, 0, 6)
	hidden := path + ".hidden"

	var out, errOut syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(context.Background(), []string{
			"-frame", path, "-interval", "30ms", "-max-scans", "2",
			"-max-consecutive-failures", "0",
		}, &out, &errOut)
	}()
	waitFor(t, "first scan", func() bool { return strings.Contains(out.String(), "[scan 1]") })
	if err := os.Rename(path, hidden); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a logged scan failure", func() bool {
		return strings.Contains(errOut.String(), "scan failed")
	})
	if err := os.Rename(hidden, path); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("watch died on a transient failure: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch did not recover")
	}
	if !strings.Contains(out.String(), "[scan 2]") {
		t.Errorf("second scan missing after recovery:\n%s", out.String())
	}
	// The frame never changed, so the kept baseline must show no drift.
	if strings.Contains(out.String(), "REGRESSIONS") {
		t.Errorf("phantom drift across the outage:\n%s", out.String())
	}
}

// TestWatchExitsAfterMaxConsecutiveFailures: failures in a row beyond the
// limit end the watch with an error naming the count.
func TestWatchExitsAfterMaxConsecutiveFailures(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(context.Background(), []string{
		"-frame", filepath.Join(t.TempDir(), "never.frame"),
		"-interval", "10ms", "-max-consecutive-failures", "3",
	}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "3 consecutive scan failures") {
		t.Fatalf("err = %v, want consecutive-failure error", err)
	}
	if got := strings.Count(errOut.String(), "scan failed"); got != 3 {
		t.Errorf("logged failures = %d, want 3:\n%s", got, errOut.String())
	}
}

// TestWatchCheckpointRestoresBaseline pins the durable-drift contract: a
// restarted watch with -checkpoint diffs its first scan against the last
// report of the previous process instead of silently resetting.
func TestWatchCheckpointRestoresBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.frame")
	ckpt := filepath.Join(dir, "baseline.cvj")
	writeFrameFile(t, path, 0, 7)

	var out1, errOut1 bytes.Buffer
	if err := run(context.Background(), []string{
		"-frame", path, "-interval", "10ms", "-max-scans", "1", "-checkpoint", ckpt,
	}, &out1, &errOut1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out1.String(), "REGRESSIONS") {
		t.Fatalf("first-ever scan has no baseline to drift from:\n%s", out1.String())
	}

	// The entity degrades while the watcher is down.
	writeFrameFile(t, path, 1, 7)

	var out2, errOut2 bytes.Buffer
	if err := run(context.Background(), []string{
		"-frame", path, "-interval", "10ms", "-max-scans", "1", "-checkpoint", ckpt,
	}, &out2, &errOut2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut2.String(), "baseline") {
		t.Errorf("restart did not announce the restored baseline:\n%s", errOut2.String())
	}
	if !strings.Contains(out2.String(), "REGRESSIONS") {
		t.Errorf("drift across the restart not detected:\n%s", out2.String())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the watcher goroutine
// writes while the test polls.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
