package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
)

func writeFrameFile(t *testing.T, path string, misconfig float64, seed int64) {
	t.Helper()
	host, _ := fixtures.SystemHost("watched", fixtures.Profile{Seed: seed, MisconfigRate: misconfig})
	frame, err := frames.Capture(host, nil, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if err := frame.Write(f); err != nil {
		t.Fatal(err)
	}
}

func TestWatchDetectsDriftBetweenScans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "watched.frame")
	writeFrameFile(t, path, 0, 1)

	// Swap the frame contents between the first and second scan.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(150 * time.Millisecond)
		writeFrameFile(t, path, 1, 1)
	}()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-frame", path, "-interval", "300ms", "-max-scans", "2",
	}, &out)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "[scan 1]") || !strings.Contains(text, "[scan 2]") {
		t.Fatalf("scans missing:\n%s", text)
	}
	if !strings.Contains(text, "REGRESSIONS") {
		t.Errorf("drift not reported:\n%s", text)
	}
}

func TestWatchStableFrameNoDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stable.frame")
	writeFrameFile(t, path, 0.5, 2)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-frame", path, "-interval", "50ms", "-max-scans", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "REGRESSIONS") {
		t.Errorf("phantom drift:\n%s", out.String())
	}
}

func TestWatchCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.frame")
	writeFrameFile(t, path, 0, 3)
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-frame", path, "-interval", "1h"}, &out)
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on cancellation")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestWatchFlagErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"-host", "/x", "-frame", "/y"},
		{"-frame", "/z", "-interval", "-1s"},
		{"-frame", "/no/such.frame", "-max-scans", "1"},
	} {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v succeeded", args)
		}
	}
}
