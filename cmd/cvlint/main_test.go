package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanFile(t *testing.T) {
	path := writeTemp(t, "clean.yaml", `
config_name: PermitRootLogin
config_description: "ok"
config_path: [""]
preferred_value: ["no"]
preferred_value_match: exact,any
matched_description: "ok"
not_matched_preferred_value_description: "bad"
not_present_description: "missing"
tags: ["#cis"]
`)
	if code := run([]string{path}); code != 0 {
		t.Errorf("clean file exit = %d", code)
	}
}

func TestLintBrokenFile(t *testing.T) {
	path := writeTemp(t, "broken.yaml", "config_nme: typo\n")
	if code := run([]string{path}); code != 1 {
		t.Errorf("broken file exit = %d", code)
	}
}

func TestLintWarningsDoNotFail(t *testing.T) {
	path := writeTemp(t, "warn.yaml", "config_name: x\n")
	if code := run([]string{path}); code != 0 {
		t.Errorf("warnings-only exit = %d", code)
	}
	if code := run([]string{"-q", path}); code != 0 {
		t.Errorf("quiet exit = %d", code)
	}
}

func TestLintBuiltin(t *testing.T) {
	if code := run([]string{"-builtin", "-q"}); code != 0 {
		t.Errorf("builtin library lint exit = %d", code)
	}
}

func TestLintUsageAndMissingFile(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no-args exit = %d", code)
	}
	if code := run([]string{"/no/such/file.yaml"}); code != 1 {
		t.Errorf("missing file exit = %d", code)
	}
}
