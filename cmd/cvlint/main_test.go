package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const cleanRule = `config_name: PermitRootLogin
config_description: "ok"
config_path: [""]
preferred_value: ["no"]
preferred_value_match: exact,any
matched_description: "ok"
not_matched_preferred_value_description: "bad"
not_present_description: "missing"
tags: ["#cis"]
`

func TestLintCleanFile(t *testing.T) {
	path := writeTemp(t, "clean.yaml", cleanRule)
	code, out, _ := runCapture(t, path)
	if code != 0 {
		t.Errorf("clean file exit = %d", code)
	}
	if !strings.Contains(out, "1 file(s) checked, 0 error(s), 0 warning(s)") {
		t.Errorf("summary = %q", out)
	}
}

func TestLintBrokenFile(t *testing.T) {
	path := writeTemp(t, "broken.yaml", "config_nme: typo\n")
	code, out, _ := runCapture(t, path)
	if code != 1 {
		t.Errorf("broken file exit = %d", code)
	}
	if !strings.Contains(out, "CVL003") || !strings.Contains(out, `"config_name"`) {
		t.Errorf("output = %q", out)
	}
}

func TestLintWarningsDoNotFail(t *testing.T) {
	path := writeTemp(t, "warn.yaml", "config_name: x\n")
	if code, _, _ := runCapture(t, path); code != 0 {
		t.Errorf("warnings-only exit = %d", code)
	}
	code, out, _ := runCapture(t, "-q", path)
	if code != 0 {
		t.Errorf("quiet exit = %d", code)
	}
	if strings.Contains(out, "CVL5") {
		t.Errorf("quiet mode printed warnings: %q", out)
	}
}

func TestExplain(t *testing.T) {
	code, out, _ := runCapture(t, "-explain", "CVL401")
	if code != 0 {
		t.Fatalf("explain exit = %d", code)
	}
	for _, want := range []string{"CVL401", "error", "Minimal example:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Every catalog code must be explainable, style codes included.
	if code, out, _ := runCapture(t, "-explain", "CVL501"); code != 0 || !strings.Contains(out, "CVL501") {
		t.Errorf("explain CVL501: exit=%d output=%q", code, out)
	}
	code, _, stderr := runCapture(t, "-explain", "CVL999")
	if code != 2 || !strings.Contains(stderr, "CVL999") {
		t.Errorf("unknown code: exit=%d stderr=%q", code, stderr)
	}
}

const unsatRule = `config_name: Protocol
config_description: "ok"
config_path: [""]
preferred_value: ["2"]
preferred_value_match: exact,any
non_preferred_value: ["2"]
non_preferred_value_match: exact,any
matched_description: "ok"
not_matched_preferred_value_description: "bad"
not_present_description: "missing"
tags: ["#cis"]
`

func TestNoSemanticFlag(t *testing.T) {
	path := writeTemp(t, "unsat.yaml", unsatRule)
	// Semantic analysis is on by default: the self-contradictory rule is
	// unsatisfiable (CVL401) on top of the style-level CVL205.
	code, out, _ := runCapture(t, path)
	if code != 1 || !strings.Contains(out, "CVL401") {
		t.Errorf("default run: exit=%d output=%q", code, out)
	}
	for _, flag := range []string{"-no-semantic", "-semantic=false"} {
		_, out, _ := runCapture(t, flag, path)
		if strings.Contains(out, "CVL401") {
			t.Errorf("%s still reported CVL401: %q", flag, out)
		}
	}
}

func TestLintBuiltin(t *testing.T) {
	if code, _, _ := runCapture(t, "-builtin", "-q"); code != 0 {
		t.Errorf("builtin library lint exit = %d", code)
	}
}

func TestLintUsageAndMissingFile(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Errorf("no-args exit = %d", code)
	}
	// I/O failures are usage-level (exit 2), distinct from lint errors.
	if code, _, _ := runCapture(t, "/no/such/file.yaml"); code != 2 {
		t.Errorf("missing file exit = %d", code)
	}
	if code, _, _ := runCapture(t, "-format", "xml", "x.yaml"); code != 2 {
		t.Errorf("bad format exit = %d", code)
	}
	if code, _, _ := runCapture(t, "-baseline", "/no/such/baseline.json", writeTemp(t, "a.yaml", cleanRule)); code != 2 {
		t.Errorf("missing baseline exit = %d", code)
	}
}

func TestUsageDocumentsExitCodes(t *testing.T) {
	_, _, stderr := runCapture(t)
	for _, want := range []string{"Exit codes:", "0  no findings", "1  at least one error", "2  usage error"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage missing %q:\n%s", want, stderr)
		}
	}
}

// TestProjectDirectoryMode pins the whole-project flow: a directory with a
// manifest, an inheritance chain, and cross-file problems analyzed as one
// unit with positioned findings.
func TestProjectDirectoryMode(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"base.yaml": cleanRule,
		"child.yaml": "parent_cvl_file: base.yaml\n---\n" +
			strings.Replace(cleanRule, "config_description", "description", 1),
		"manifest.yaml": "sshd:\n  enabled: True\n  cvl_file: child.yaml\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, out, _ := runCapture(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	// child.yaml redefines PermitRootLogin without override → CVL104.
	if !strings.Contains(out, "CVL104") || !strings.Contains(out, "base.yaml") {
		t.Errorf("shadow warning missing: %q", out)
	}

	// A broken parent reference in project mode is an error.
	if err := os.WriteFile(filepath.Join(dir, "orphan.yaml"), []byte("parent_cvl_file: gone.yaml\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCapture(t, dir)
	if code != 1 || !strings.Contains(out, "CVL101") {
		t.Errorf("missing parent: exit=%d output=%q", code, out)
	}
}

func TestSingleFileParentIsWarning(t *testing.T) {
	path := writeTemp(t, "child.yaml", "parent_cvl_file: elsewhere.yaml\n---\n"+cleanRule)
	code, out, _ := runCapture(t, path)
	if code != 0 {
		t.Errorf("exit = %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "CVL101") {
		t.Errorf("parent warning missing: %q", out)
	}
}

func TestFormatJSON(t *testing.T) {
	path := writeTemp(t, "broken.yaml", "config_nme: typo\n")
	code, out, _ := runCapture(t, "-format", "json", path)
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	var got struct {
		FilesChecked int `json:"files_checked"`
		Errors       int `json:"errors"`
		Diagnostics  []struct {
			Code string `json:"code"`
			Line int    `json:"line"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if got.FilesChecked != 1 || got.Errors != 1 || len(got.Diagnostics) == 0 || got.Diagnostics[0].Code != "CVL003" {
		t.Errorf("json = %+v", got)
	}
}

func TestFormatSARIF(t *testing.T) {
	path := writeTemp(t, "broken.yaml", "config_nme: typo\n")
	code, out, _ := runCapture(t, "-format", "sarif", path)
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("invalid SARIF: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || log.Schema == "" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "cvlint" {
		t.Errorf("sarif header = %+v", log)
	}
	if len(log.Runs[0].Results) == 0 || log.Runs[0].Results[0].RuleID != "CVL003" {
		t.Errorf("sarif results = %+v", log.Runs[0].Results)
	}
}

func TestBaselineWorkflow(t *testing.T) {
	dir := t.TempDir()
	rulePath := filepath.Join(dir, "broken.yaml")
	if err := os.WriteFile(rulePath, []byte("config_nme: typo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	baselinePath := filepath.Join(dir, "lint-baseline.json")

	// Accept the current findings.
	code, _, stderr := runCapture(t, "-write-baseline", baselinePath, rulePath)
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, stderr: %s", code, stderr)
	}

	// With the baseline, the same findings no longer fail the run.
	code, out, _ := runCapture(t, "-baseline", baselinePath, rulePath)
	if code != 0 {
		t.Errorf("baselined run exit = %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "suppressed by baseline") {
		t.Errorf("suppression count missing: %q", out)
	}

	// A new finding in another file still fails.
	otherPath := filepath.Join(dir, "other.yaml")
	if err := os.WriteFile(otherPath, []byte("config_nme: typo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCapture(t, "-baseline", baselinePath, rulePath, otherPath)
	if code != 1 || !strings.Contains(out, "other.yaml") {
		t.Errorf("new finding: exit=%d output=%q", code, out)
	}
}
