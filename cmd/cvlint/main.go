// Command cvlint runs project-wide static analysis over CVL rule files
// and manifests: syntax errors with positions, unknown keywords (with typo
// suggestions), inheritance-graph problems (missing parents, cycles, dead
// overrides, silent shadowing), cross-file composite-reference checks,
// manifest reachability, and maintainability warnings.
//
//	cvlint rules/*.yaml             # lint individual files
//	cvlint ./rules                  # analyze a whole rule project
//	cvlint -q rules/nginx.yaml      # errors only
//	cvlint -builtin                 # analyze the embedded rule library
//	cvlint -format sarif ./rules    # SARIF 2.1.0 for code-scanning UIs
//	cvlint -write-baseline lint.json ./rules   # accept current findings
//	cvlint -baseline lint.json ./rules         # gate only on new findings
//	cvlint -no-semantic ./rules     # skip constraint-level CVL4xx analysis
//	cvlint -explain CVL401          # document a diagnostic code
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"configvalidator/internal/analysis"
	"configvalidator/internal/fsutil"
	"configvalidator/internal/rules"
)

const usageText = `usage: cvlint [flags] <rulefile.yaml | ruledir>...

cvlint analyzes CVL rule files and manifests. Directory arguments are
loaded as whole projects (inheritance and cross-file checks apply);
file arguments are linted individually, with unresolved parent files
reported as warnings instead of errors.

Exit codes:
  0  no findings, or warnings only
  1  at least one error-level finding
  2  usage error or I/O failure

Flags:
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), usageText)
		fs.PrintDefaults()
	}
	quiet := fs.Bool("q", false, "report errors only, suppress warnings (text format)")
	builtin := fs.Bool("builtin", false, "analyze the embedded built-in rule library")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "", "suppress findings listed in this baseline `file`")
	writeBaseline := fs.String("write-baseline", "", "write current findings to a baseline `file` and exit 0")
	semantic := fs.Bool("semantic", true, "run constraint-level semantic analysis (CVL4xx)")
	noSemantic := fs.Bool("no-semantic", false, "skip constraint-level semantic analysis (same as -semantic=false)")
	explain := fs.String("explain", "", "print the catalog entry and a minimal example for a diagnostic `code`, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *explain != "" {
		return runExplain(*explain, stdout, stderr)
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "cvlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	project := analysis.NewProject()
	fileMode := !*builtin
	if *builtin {
		addBuiltin(project)
	}
	for _, arg := range fs.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
		if info.IsDir() {
			fileMode = false
			if err := project.AddDir(arg); err != nil {
				fmt.Fprintln(stderr, "cvlint:", err)
				return 2
			}
			continue
		}
		content, err := os.ReadFile(arg)
		if err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
		if analysis.IsManifestPath(arg) {
			project.AddManifest(arg, content)
		} else {
			project.AddRuleFile(arg, content)
		}
	}
	if project.Len() == 0 {
		fs.Usage()
		return 2
	}

	result := analysis.Analyze(project, analysis.Options{
		ExternalParents: fileMode,
		NoSemantic:      *noSemantic || !*semantic,
	})

	if *writeBaseline != "" {
		// Atomic replace: an interrupted rewrite must not corrupt the
		// baseline the whole CI gate depends on.
		err := fsutil.WriteAtomic(*writeBaseline, 0o644, func(w io.Writer) error {
			return analysis.NewBaseline(result.Diagnostics).Encode(w)
		})
		if err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "cvlint: wrote %d suppression(s) to %s\n", len(result.Diagnostics), *writeBaseline)
		return 0
	}

	diags := result.Diagnostics
	suppressed := 0
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
		baseline, err := analysis.ParseBaseline(data)
		if err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
		var dropped []analysis.Diagnostic
		diags, dropped = baseline.Filter(diags)
		suppressed = len(dropped)
	}

	switch *format {
	case "json":
		if err := analysis.RenderJSON(stdout, diags, result.FilesChecked); err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
	case "sarif":
		if err := analysis.RenderSARIF(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "cvlint:", err)
			return 2
		}
	default:
		analysis.RenderText(stdout, diags, result.FilesChecked, suppressed, *quiet)
	}

	for _, d := range diags {
		if d.Severity == analysis.SevError {
			return 1
		}
	}
	return 0
}

// runExplain documents one diagnostic code: catalog summary, default
// severity, and a minimal triggering example. Unknown codes exit 2.
func runExplain(code string, stdout, stderr io.Writer) int {
	for _, c := range analysis.Catalog() {
		if c.Code != code {
			continue
		}
		fmt.Fprintf(stdout, "%s (%s): %s\n", c.Code, c.Severity, c.Summary)
		if ex := analysis.Example(c.Code); ex != "" {
			fmt.Fprintf(stdout, "\nMinimal example:\n\n%s", indent(ex))
		}
		return 0
	}
	fmt.Fprintf(stderr, "cvlint: unknown diagnostic code %q (see cvlint -explain with a code from docs/LINTING.md)\n", code)
	return 2
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if line != "" {
			b.WriteString("  ")
			b.WriteString(line)
		}
	}
	return b.String()
}

// addBuiltin loads the embedded rule library, manifest included, in
// deterministic path order.
func addBuiltin(p *analysis.Project) {
	files := rules.Files()
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if analysis.IsManifestPath(path) {
			p.AddManifest(path, []byte(files[path]))
		} else {
			p.AddRuleFile(path, []byte(files[path]))
		}
	}
}
