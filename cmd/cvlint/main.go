// Command cvlint lints CVL rule files: syntax errors, unknown keywords
// (with typo suggestions), type-mismatched keywords, duplicate rules, and
// maintainability warnings such as missing descriptions or tags.
//
//	cvlint rules/*.yaml
//	cvlint -q rules/nginx.yaml     # errors only
//	cvlint -builtin                # lint the embedded rule library
package main

import (
	"flag"
	"fmt"
	"os"

	"configvalidator/internal/cvl"
	"configvalidator/internal/rules"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cvlint", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "report errors only, suppress warnings")
	builtin := fs.Bool("builtin", false, "lint the embedded built-in rule library")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	type input struct {
		path    string
		content []byte
	}
	var inputs []input
	if *builtin {
		for path, content := range rules.Files() {
			if path == "manifest.yaml" {
				continue
			}
			inputs = append(inputs, input{path: path, content: []byte(content)})
		}
	}
	for _, path := range fs.Args() {
		content, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cvlint:", err)
			return 1
		}
		inputs = append(inputs, input{path: path, content: content})
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cvlint [-q] [-builtin] <rulefile.yaml>...")
		return 2
	}

	errors, warnings := 0, 0
	for _, in := range inputs {
		for _, d := range cvl.Lint(in.path, in.content) {
			if d.Level == cvl.LintWarning {
				warnings++
				if *quiet {
					continue
				}
			} else {
				errors++
			}
			fmt.Printf("%s: %s\n", in.path, d)
		}
	}
	fmt.Printf("%d file(s) checked, %d error(s), %d warning(s)\n", len(inputs), errors, warnings)
	if errors > 0 {
		return 1
	}
	return 0
}
