// Command cvdiff compares two configuration frames of the same entity and
// reports validation drift: regressions, fixes, and appeared/disappeared
// checks. This is the continuous-validation workflow of the paper's
// production deployment — entities are scanned daily, and operators act on
// the change set.
//
//	crawlframe -host / -out monday.frame
//	crawlframe -host / -out tuesday.frame     # a day later
//	cvdiff -old monday.frame -new tuesday.frame
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	configvalidator "configvalidator"
	"configvalidator/internal/frames"
	"configvalidator/internal/output"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvdiff", flag.ContinueOnError)
	var (
		oldPath = fs.String("old", "", "earlier frame file")
		newPath = fs.String("new", "", "later frame file")
		failOn  = fs.Bool("fail-on-regressions", false, "exit nonzero when regressions are found")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("both -old and -new frame files are required")
	}
	v, err := configvalidator.New()
	if err != nil {
		return err
	}
	oldRep, err := scanFrame(v, *oldPath)
	if err != nil {
		return fmt.Errorf("old frame: %w", err)
	}
	newRep, err := scanFrame(v, *newPath)
	if err != nil {
		return fmt.Errorf("new frame: %w", err)
	}
	drift := output.DiffReports(oldRep, newRep)
	if err := output.WriteDrift(out, drift); err != nil {
		return err
	}
	if *failOn && len(drift.Regressions) > 0 {
		return fmt.Errorf("%d regressions", len(drift.Regressions))
	}
	return nil
}

func scanFrame(v *configvalidator.Validator, path string) (*configvalidator.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	frame, err := frames.Read(f)
	if err != nil {
		return nil, err
	}
	return v.Validate(frame.Entity())
}
