package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
)

func writeFrame(t *testing.T, name string, ent entity.Entity) string {
	t.Helper()
	frame, err := frames.Capture(ent, nil, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if err := frame.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDriftDetection(t *testing.T) {
	good, _ := fixtures.SystemHost("web-01", fixtures.Profile{Seed: 1})
	drifted, _ := fixtures.SystemHost("web-01", fixtures.Profile{Seed: 1})
	drifted.AddFile("/etc/ssh/sshd_config", []byte("Port 22\nPermitRootLogin yes\n"), entity.WithMode(0o600))

	oldFrame := writeFrame(t, "old.frame", good)
	newFrame := writeFrame(t, "new.frame", drifted)

	var out bytes.Buffer
	if err := run([]string{"-old", oldFrame, "-new", newFrame}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "REGRESSIONS") || !strings.Contains(out.String(), "PermitRootLogin") {
		t.Errorf("drift output:\n%s", out.String())
	}
	// The replaced sshd_config drops most keys, so some checks regress to
	// not-present failures; PermitRootLogin must be among the regressions.

	// fail-on-regressions exits nonzero.
	if err := run([]string{"-old", oldFrame, "-new", newFrame, "-fail-on-regressions"}, &out); err == nil {
		t.Error("regressions did not fail the run")
	}
}

func TestNoDrift(t *testing.T) {
	host, _ := fixtures.SystemHost("web-01", fixtures.Profile{Seed: 1})
	framePath := writeFrame(t, "same.frame", host)
	var out bytes.Buffer
	if err := run([]string{"-old", framePath, "-new", framePath, "-fail-on-regressions"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "No drift") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestErrorCases(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-old", "/no/old.frame", "-new", "/no/new.frame"}, &out); err == nil {
		t.Error("missing files accepted")
	}
}
