package main

// Benchmark regression gating:
//
//	benchreport -snapshot bench.txt > BENCH.json   convert `go test -bench`
//	                                               text output to bench JSON
//	benchreport -diff base.json new.json           compare two snapshots and
//	                                               exit non-zero on regression
//
// The diff guards the performance-sensitive benchmarks:
//   - BenchmarkTable2_ConfigValidator (exact name), every
//     BenchmarkFleetScan* benchmark, and every BenchmarkSemantic*
//     benchmark (semantic rule analysis: lowering + checking) may not
//     regress more than 15% ns/op against the baseline;
//   - every BenchmarkFleetScanWarm<N> in the new run must be at least 2x
//     faster than its cold counterpart BenchmarkFleetScan<N> — the
//     parse-cache + verdict-memo speedup contract.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// regressionLimit is the tolerated ns/op growth versus the baseline.
const regressionLimit = 1.15

// minWarmSpeedup is the required cold/warm ratio for fleet-scan pairs.
const minWarmSpeedup = 2.0

// benchResult is one benchmark measurement.
type benchResult struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchFile is the snapshot format committed as BENCH_parallel.json.
type benchFile struct {
	Note       string        `json:"note,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// parseBenchText extracts benchmark lines from `go test -bench` text output.
// Lines look like:
//
//	BenchmarkFleetScan10      	    1602	   2118973 ns/op	 ... extra metrics
//
// The name's trailing -N GOMAXPROCS suffix (absent on a GOMAXPROCS=1 box) is
// stripped so snapshots taken on different machines compare by logical name.
func parseBenchText(r io.Reader) ([]benchResult, error) {
	var out []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if idx := strings.LastIndex(name, "-"); idx > 0 {
			if _, err := strconv.Atoi(name[idx+1:]); err == nil {
				name = name[:idx]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		out = append(out, benchResult{Name: name, Iters: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

// writeSnapshot converts bench text from r into snapshot JSON on w.
func writeSnapshot(r io.Reader, w io.Writer, note string) error {
	results, err := parseBenchText(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(benchFile{Note: note, Benchmarks: results})
}

func readBenchFile(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]benchResult, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		byName[b.Name] = b
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return byName, nil
}

// gated reports whether a benchmark name is held to the regression limit.
func gated(name string) bool {
	return name == "BenchmarkTable2_ConfigValidator" ||
		strings.HasPrefix(name, "BenchmarkFleetScan") ||
		strings.HasPrefix(name, "BenchmarkSemantic")
}

// diffBenchResults compares a new run against the baseline and writes a
// verdict per gated benchmark. It returns true when any gate failed.
func diffBenchResults(base, next map[string]benchResult, w io.Writer) bool {
	failed := false
	names := make([]string, 0, len(base))
	for name := range base {
		if gated(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-36s %14s %14s %8s  %s\n", "BENCHMARK", "BASE ns/op", "NEW ns/op", "DELTA", "VERDICT")
	for _, name := range names {
		b := base[name]
		n, ok := next[name]
		if !ok {
			failed = true
			fmt.Fprintf(w, "%-36s %14.0f %14s %8s  FAIL (missing from new run)\n", name, b.NsPerOp, "-", "-")
			continue
		}
		delta := n.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if n.NsPerOp > b.NsPerOp*regressionLimit {
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", (regressionLimit-1)*100)
			failed = true
		}
		fmt.Fprintf(w, "%-36s %14.0f %14.0f %+7.1f%%  %s\n", name, b.NsPerOp, n.NsPerOp, delta*100, verdict)
	}

	// Speedup contract: each warm fleet benchmark in the new run must beat
	// its cold counterpart by minWarmSpeedup.
	for _, name := range names {
		const warmPrefix = "BenchmarkFleetScanWarm"
		if !strings.HasPrefix(name, warmPrefix) {
			continue
		}
		cold := "BenchmarkFleetScan" + strings.TrimPrefix(name, warmPrefix)
		warmRes, wok := next[name]
		coldRes, cok := next[cold]
		if !wok || !cok {
			failed = true
			fmt.Fprintf(w, "speedup %s vs %s: FAIL (pair missing from new run)\n", cold, name)
			continue
		}
		ratio := coldRes.NsPerOp / warmRes.NsPerOp
		verdict := "ok"
		if ratio < minWarmSpeedup {
			verdict = fmt.Sprintf("FAIL (< %.1fx)", minWarmSpeedup)
			failed = true
		}
		fmt.Fprintf(w, "speedup %s vs %s: %.2fx  %s\n", cold, name, ratio, verdict)
	}
	return failed
}

// diffBenchFiles runs the diff on two snapshot files.
func diffBenchFiles(basePath, newPath string, w io.Writer) (bool, error) {
	base, err := readBenchFile(basePath)
	if err != nil {
		return false, err
	}
	next, err := readBenchFile(newPath)
	if err != nil {
		return false, err
	}
	return diffBenchResults(base, next, w), nil
}
