package main

import "testing"

func TestAllReportsRun(t *testing.T) {
	// One iteration per engine keeps this a correctness smoke test rather
	// than a measurement.
	if err := run(true, true, true, 5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNoReportsIsValid(t *testing.T) {
	if err := run(false, false, false, 0, 1); err != nil {
		t.Fatal(err)
	}
}
