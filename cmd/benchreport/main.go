// Command benchreport regenerates the paper's evaluation artifacts:
//
//	benchreport -table1      Table 1: targets and rule coverage
//	benchreport -table2      Table 2: 40 CIS rules under four engines
//	benchreport -listing6    Listing 6: rule-encoding size comparison
//	benchreport -fleet N     §5: fleet-scale image scanning throughput
//	benchreport -all         everything
//
// It also gates benchmark regressions (see diff.go):
//
//	benchreport -snapshot bench.txt       convert `go test -bench` output
//	                                      ("-" reads stdin) to bench JSON
//	benchreport -diff base.json new.json  exit non-zero on >15% regression
//	                                      or a warm-scan speedup below 2x
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/baseline"
	"configvalidator/internal/baseline/scriptcheck"
	"configvalidator/internal/baseline/xccdf"
	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/fsutil"
	"configvalidator/internal/rules"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print the Table-1 coverage report")
		table2   = flag.Bool("table2", false, "run and print the Table-2 engine comparison")
		listing6 = flag.Bool("listing6", false, "print the Listing-6 encoding comparison")
		fleet    = flag.Int("fleet", 0, "scan a fleet of N generated images and report throughput")
		all      = flag.Bool("all", false, "produce every report")
		iters    = flag.Int("iters", 50, "iterations per engine for -table2")
		snapshot = flag.String("snapshot", "", "convert `go test -bench` text output (file, or '-' for stdin) to bench JSON")
		snapOut  = flag.String("o", "", "write -snapshot JSON atomically to this `file` instead of stdout")
		diff     = flag.Bool("diff", false, "compare two bench JSON files (args: baseline new); exit 1 on regression")
	)
	flag.Parse()
	if *snapshot != "" {
		in := os.Stdin
		if *snapshot != "-" {
			f, err := os.Open(*snapshot)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchreport:", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		}
		const header = "benchmark snapshot, see `make bench-check`"
		var err error
		if *snapOut != "" {
			// Atomic replace: a crash mid-conversion must not leave a torn
			// baseline for the benchmark gate.
			err = fsutil.WriteAtomic(*snapOut, 0o644, func(w io.Writer) error {
				return writeSnapshot(in, w, header)
			})
		} else {
			err = writeSnapshot(in, os.Stdout, header)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchreport: -diff needs exactly two arguments: baseline.json new.json")
			os.Exit(2)
		}
		failed, err := diffBenchFiles(flag.Arg(0), flag.Arg(1), os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		if failed {
			fmt.Fprintln(os.Stderr, "benchreport: benchmark gate FAILED")
			os.Exit(1)
		}
		fmt.Println("benchmark gate passed")
		return
	}
	if *all {
		*table1, *table2, *listing6 = true, true, true
		if *fleet == 0 {
			*fleet = 100
		}
	}
	if !*table1 && !*table2 && !*listing6 && *fleet == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*table1, *table2, *listing6, *fleet, *iters); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(table1, table2, listing6 bool, fleet, iters int) error {
	if table1 {
		if err := reportTable1(); err != nil {
			return err
		}
	}
	if table2 {
		if err := reportTable2(iters); err != nil {
			return err
		}
	}
	if listing6 {
		if err := reportListing6(); err != nil {
			return err
		}
	}
	if fleet > 0 {
		if err := reportFleet(fleet); err != nil {
			return err
		}
	}
	return nil
}

// reportTable1 prints the coverage table of §4.1.
func reportTable1() error {
	all, err := rules.All()
	if err != nil {
		return err
	}
	fmt.Println("== Table 1: Targets supported by ConfigValidator ==")
	byCategory := map[string][]string{}
	for _, t := range rules.Targets() {
		byCategory[t.Category] = append(byCategory[t.Category], t.Name)
	}
	for _, cat := range []string{"application", "system", "cloud"} {
		names := byCategory[cat]
		sort.Strings(names)
		fmt.Printf("%-16s %s\n", cat+"s:", strings.Join(names, ", "))
	}
	total := 0
	fmt.Printf("\n%-12s %-12s %-10s %s\n", "TARGET", "CATEGORY", "STANDARD", "RULES")
	for _, t := range rules.Targets() {
		n := len(all[t.Name])
		total += n
		fmt.Printf("%-12s %-12s %-10s %d\n", t.Name, t.Category, t.Standard, n)
	}
	fmt.Printf("\nTotal: %d target types, %d rules\n", len(rules.Targets()), total)
	fmt.Printf("CIS Docker checklist coverage: %d/%d (%.0f%%)\n",
		len(all["docker"]), rules.CISDockerChecklistSize,
		float64(len(all["docker"]))/float64(rules.CISDockerChecklistSize)*100)
	fmt.Printf("Ubuntu audit checklist coverage: %d/%d (all)\n\n",
		len(all["audit"]), rules.UbuntuAuditChecklistSize)
	return nil
}

// reportTable2 times the four engines on the 40-rule workload.
func reportTable2(iters int) error {
	host, _ := fixtures.SystemHost("bench-host", fixtures.Profile{Seed: 1234, MisconfigRate: 0.2})
	specs := baseline.CIS40()

	// ConfigValidator: the 40 equivalent CVL rules via the rule engine.
	cvlRules, cvlPaths, err := cvlRulesFor(specs)
	if err != nil {
		return err
	}
	eng := engine.New(nil)
	cvlTime, err := timeIt(iters, func() error {
		_, err := eng.ValidateRules(host, cvlRules, cvlPaths)
		return err
	})
	if err != nil {
		return err
	}

	// Chef Inspec (observed): script checks.
	checks := scriptcheck.FromSpecs(specs)
	scriptEng := scriptcheck.New()
	scriptTime, err := timeIt(iters, func() error {
		scriptEng.Run(host, checks)
		return nil
	})
	if err != nil {
		return err
	}

	// OpenSCAP: XCCDF engine with pre-loaded documents.
	benchXML, ovalXML, err := xccdf.Generate("cis-ubuntu-40", specs)
	if err != nil {
		return err
	}
	xEng, err := xccdf.Load(benchXML, ovalXML)
	if err != nil {
		return err
	}
	scapTime, err := timeIt(iters, func() error {
		xEng.Evaluate(host)
		return nil
	})
	if err != nil {
		return err
	}

	// CIS-CAT: the same evaluation behind a simulated init cost.
	ciscat := xccdf.NewCISCAT(xEng, 0)
	ciscatTime, err := timeIt(iters, func() error {
		ciscat.Evaluate(host)
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Println("== Table 2: 40-rule runtime across validation engines ==")
	fmt.Printf("%-18s %-14s %-16s %14s %10s\n", "TOOL", "SPEC LANG", "IMPL LANG", "TIME/RUN", "VS CVL")
	rows := []struct {
		tool, spec, impl string
		d                time.Duration
	}{
		{"ConfigValidator", "YAML (CVL)", "Go", cvlTime},
		{"Chef Inspec*", "bash-in-Ruby", "Go (simulated)", scriptTime},
		{"OpenSCAP*", "XCCDF/OVAL", "Go (simulated)", scapTime},
		{"CIS-CAT*", "XCCDF/OVAL", "Go + sim. init", ciscatTime},
	}
	for _, r := range rows {
		fmt.Printf("%-18s %-14s %-16s %14s %9.1fx\n", r.tool, r.spec, r.impl, r.d.Round(time.Microsecond), float64(r.d)/float64(cvlTime))
	}
	fmt.Printf("\n*: reimplementation of the tool's validation model in Go (see DESIGN.md);\n")
	fmt.Printf("   CIS-CAT includes a simulated %v initialization cost standing in for\n", xccdf.DefaultCISCATInitCost)
	fmt.Printf("   JVM startup/license checking. Compare ratios with the paper's\n")
	fmt.Printf("   1.92s / 1.25s / 0.4s / 14.5s, not absolute values.\n\n")
	return nil
}

func cvlRulesFor(specs []baseline.CheckSpec) ([]*cvl.Rule, []string, error) {
	want := make(map[string]bool, len(specs))
	for _, s := range specs {
		want[s.CVLTarget+"/"+s.CVLRule] = true
	}
	var out []*cvl.Rule
	pathSet := map[string]bool{}
	for _, t := range rules.Targets() {
		rs, err := rules.Load(t.Name)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range rs {
			if want[t.Name+"/"+r.Name] {
				out = append(out, r)
				for _, p := range t.SearchPaths {
					pathSet[p] = true
				}
			}
		}
	}
	if len(out) != len(specs) {
		return nil, nil, fmt.Errorf("resolved %d CVL rules for %d specs", len(out), len(specs))
	}
	paths := make([]string, 0, len(pathSet))
	for p := range pathSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return out, paths, nil
}

func timeIt(iters int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// reportListing6 prints the encoding-size comparison for the
// "Disable SSH Root Login" rule.
func reportListing6() error {
	specs := baseline.CIS40()
	var spec baseline.CheckSpec
	for _, s := range specs {
		if s.CVLRule == "PermitRootLogin" {
			spec = s
		}
	}
	benchXML, ovalXML, err := xccdf.Generate("one-rule", []baseline.CheckSpec{spec})
	if err != nil {
		return err
	}
	xccdfLines := countLines(string(benchXML)) + countLines(string(ovalXML))

	cvlSrc, err := rules.Reader()("component_configs/sshd.yaml")
	if err != nil {
		return err
	}
	cvlLines := 0
	for _, doc := range strings.Split(string(cvlSrc), "---") {
		if strings.Contains(doc, "config_name: PermitRootLogin") {
			cvlLines = countLines(strings.TrimSpace(doc))
		}
	}
	scriptLines := countLines(strings.TrimSpace(scriptcheck.Render(scriptcheck.FromSpec(spec))))

	fmt.Println("== Listing 6: encoding the 'Disable SSH Root Login' rule ==")
	fmt.Printf("%-24s %8s   (paper)\n", "FORMAT", "LINES")
	fmt.Printf("%-24s %8d   (45)\n", "XCCDF/OVAL", xccdfLines)
	fmt.Printf("%-24s %8d   (10)\n", "ConfigValidator (CVL)", cvlLines)
	fmt.Printf("%-24s %8d   (7)\n", "Inspec observed (bash)", scriptLines)
	fmt.Println()
	return nil
}

func countLines(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n") + 1
}

// reportFleet scans n generated images and reports throughput (§5: the
// production deployment validates tens of thousands of images daily). It
// runs the real fleet path — ValidateFleet with a telemetry collector —
// so the report reflects what production scanning would record.
func reportFleet(n int) error {
	reg, injected := fixtures.Fleet(n, fixtures.Profile{Seed: 99, MisconfigRate: 0.3})
	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		return err
	}
	entities := make(chan configvalidator.Entity)
	go func() {
		defer close(entities)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				continue
			}
			entities <- img.Entity()
		}
	}()
	start := time.Now()
	summary := configvalidator.Summarize(
		v.ValidateFleet(context.Background(), entities, configvalidator.FleetOptions{Workers: 1}))
	elapsed := time.Since(start)
	perDay := float64(summary.Scanned) / elapsed.Seconds() * 86400
	snap := collector.Snapshot()
	fmt.Println("== Fleet scan (production-scale workload, §5) ==")
	fmt.Printf("images scanned:        %d (%d scan errors)\n", summary.Scanned, summary.Errors)
	fmt.Printf("misconfigs injected:   %d\n", injected)
	fmt.Printf("failed checks found:   %d\n", summary.ByStatus[engine.StatusFail])
	fmt.Printf("entities w/ findings:  %d (plus %d with rule errors)\n",
		summary.EntitiesWithFindings, summary.EntitiesWithErrors)
	fmt.Printf("total time:            %v (mean scan %v)\n",
		elapsed.Round(time.Millisecond), snap.ScanLatency.Mean().Round(time.Microsecond))
	fmt.Printf("throughput:            %.0f images/s (single-threaded)\n", float64(summary.Scanned)/elapsed.Seconds())
	fmt.Printf("extrapolated capacity: %.2g images/day\n", perDay)
	fmt.Printf("paper's claim:         'tens of thousands of containers and images daily'\n\n")
	return nil
}
