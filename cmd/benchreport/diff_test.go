package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchText = `goos: linux
goarch: amd64
pkg: configvalidator
BenchmarkTable2_ConfigValidator-8   	     100	   1000000 ns/op
BenchmarkFleetScan10      	    1602	   2118973 ns/op	      4719 images/s	  794018 B/op	   14541 allocs/op
BenchmarkFleetScan100     	     121	  30089508 ns/op	      3323 images/s
BenchmarkFleetScanWarm10  	    5707	    661010 ns/op	     15128 images/s
BenchmarkFleetScanWarm100 	     345	  10984913 ns/op	      9103 images/s
PASS
ok  	configvalidator	24.429s
`

func TestParseBenchTextStripsGOMAXPROCSSuffix(t *testing.T) {
	results, err := parseBenchText(strings.NewReader(sampleBenchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	if results[0].Name != "BenchmarkTable2_ConfigValidator" {
		t.Errorf("first name = %q, want suffix stripped", results[0].Name)
	}
	if results[0].NsPerOp != 1e6 || results[0].Iters != 100 {
		t.Errorf("first result = %+v", results[0])
	}
	if results[1].Name != "BenchmarkFleetScan10" || results[1].NsPerOp != 2118973 {
		t.Errorf("second result = %+v", results[1])
	}
}

func TestParseBenchTextRejectsEmpty(t *testing.T) {
	if _, err := parseBenchText(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("want error for output with no benchmark lines")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSnapshot(strings.NewReader(sampleBenchText), &buf, "test"); err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Note != "test" || len(f.Benchmarks) != 5 {
		t.Fatalf("snapshot = %+v", f)
	}
}

// writeSnapshotFile writes a benchFile JSON to a temp path for diff tests.
func writeSnapshotFile(t *testing.T, name string, results []benchResult) string {
	t.Helper()
	data, err := json.Marshal(benchFile{Benchmarks: results})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func baselineResults() []benchResult {
	return []benchResult{
		{Name: "BenchmarkTable2_ConfigValidator", Iters: 100, NsPerOp: 1000},
		{Name: "BenchmarkFleetScan10", Iters: 100, NsPerOp: 2000},
		{Name: "BenchmarkFleetScanWarm10", Iters: 100, NsPerOp: 500},
		{Name: "BenchmarkOther", Iters: 100, NsPerOp: 10},
	}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := writeSnapshotFile(t, "base.json", baselineResults())
	next := writeSnapshotFile(t, "new.json", []benchResult{
		{Name: "BenchmarkTable2_ConfigValidator", Iters: 100, NsPerOp: 1100}, // +10%
		{Name: "BenchmarkFleetScan10", Iters: 100, NsPerOp: 2200},
		{Name: "BenchmarkFleetScanWarm10", Iters: 100, NsPerOp: 550}, // 4x speedup
	})
	var out bytes.Buffer
	failed, err := diffBenchFiles(base, next, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("gate failed unexpectedly:\n%s", out.String())
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	base := writeSnapshotFile(t, "base.json", baselineResults())
	next := writeSnapshotFile(t, "new.json", []benchResult{
		{Name: "BenchmarkTable2_ConfigValidator", Iters: 100, NsPerOp: 1300}, // +30%
		{Name: "BenchmarkFleetScan10", Iters: 100, NsPerOp: 2000},
		{Name: "BenchmarkFleetScanWarm10", Iters: 100, NsPerOp: 500},
	})
	var out bytes.Buffer
	failed, err := diffBenchFiles(base, next, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("gate passed despite +30%% regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("diff output lacks FAIL marker:\n%s", out.String())
	}
}

func TestDiffIgnoresUngatedBenchmarks(t *testing.T) {
	base := writeSnapshotFile(t, "base.json", baselineResults())
	next := writeSnapshotFile(t, "new.json", []benchResult{
		{Name: "BenchmarkTable2_ConfigValidator", Iters: 100, NsPerOp: 1000},
		{Name: "BenchmarkFleetScan10", Iters: 100, NsPerOp: 2000},
		{Name: "BenchmarkFleetScanWarm10", Iters: 100, NsPerOp: 500},
		{Name: "BenchmarkOther", Iters: 100, NsPerOp: 1000}, // 100x slower, ungated
	})
	var out bytes.Buffer
	failed, err := diffBenchFiles(base, next, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("ungated benchmark regression tripped the gate:\n%s", out.String())
	}
}

func TestDiffFailsOnMissingBenchmark(t *testing.T) {
	base := writeSnapshotFile(t, "base.json", baselineResults())
	next := writeSnapshotFile(t, "new.json", []benchResult{
		{Name: "BenchmarkTable2_ConfigValidator", Iters: 100, NsPerOp: 1000},
		{Name: "BenchmarkFleetScanWarm10", Iters: 100, NsPerOp: 500},
	})
	var out bytes.Buffer
	failed, err := diffBenchFiles(base, next, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("gate passed with BenchmarkFleetScan10 missing:\n%s", out.String())
	}
}

func TestDiffFailsOnInsufficientSpeedup(t *testing.T) {
	base := writeSnapshotFile(t, "base.json", baselineResults())
	next := writeSnapshotFile(t, "new.json", []benchResult{
		{Name: "BenchmarkTable2_ConfigValidator", Iters: 100, NsPerOp: 1000},
		{Name: "BenchmarkFleetScan10", Iters: 100, NsPerOp: 2000},
		{Name: "BenchmarkFleetScanWarm10", Iters: 100, NsPerOp: 1500}, // only 1.3x
	})
	var out bytes.Buffer
	failed, err := diffBenchFiles(base, next, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("gate passed with a 1.3x warm speedup:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Errorf("diff output lacks speedup line:\n%s", out.String())
	}
}

func TestCommittedBaselineSatisfiesItsOwnGate(t *testing.T) {
	// BENCH_parallel.json is the committed baseline; diffing it against
	// itself must pass — in particular its recorded warm/cold speedups must
	// meet the 2x contract.
	p := filepath.Join("..", "..", "BENCH_parallel.json")
	if _, err := os.Stat(p); err != nil {
		t.Skipf("baseline not present: %v", err)
	}
	var out bytes.Buffer
	failed, err := diffBenchFiles(p, p, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("committed baseline fails its own gate:\n%s", out.String())
	}
}
