package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
)

func TestGenerateProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sshd_config")
	if err := os.WriteFile(path, []byte("Port 22\nPermitRootLogin no\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-tags", "#site", path}, &out); err != nil {
		t.Fatal(err)
	}
	rf, err := cvl.ParseRuleFile("gen.yaml", out.Bytes())
	if err != nil {
		t.Fatalf("generated output does not parse: %v\n%s", err, out.String())
	}
	if len(rf.Rules) != 2 {
		t.Errorf("rules = %d", len(rf.Rules))
	}
	if !strings.Contains(out.String(), "#site") {
		t.Error("custom tag missing")
	}
}

func TestErrorCases(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/no/such/file.conf"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
