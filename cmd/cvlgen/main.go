// Command cvlgen generates a baseline ("golden config") CVL profile from
// an existing configuration file, giving rule authors a starting point
// they can prune and generalize.
//
//	cvlgen /etc/ssh/sshd_config > sshd-baseline.yaml
//	cvlgen -tags '#site,#baseline' -max 50 /etc/mysql/my.cnf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"configvalidator/internal/cvl"
	"configvalidator/internal/cvlgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvlgen", flag.ContinueOnError)
	var (
		tags = fs.String("tags", "#generated", "comma-separated tags for generated rules")
		max  = fs.Int("max", 200, "maximum number of rules to generate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cvlgen [-tags t1,t2] [-max N] <configfile>")
	}
	path := fs.Arg(0)
	content, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rules, err := cvlgen.FromFile(nil, path, content, cvlgen.Options{
		Tags:     strings.Split(*tags, ","),
		MaxRules: *max,
	})
	if err != nil {
		return err
	}
	rendered, err := cvl.FormatRuleFile("", rules)
	if err != nil {
		return err
	}
	if _, err := out.Write(rendered); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d rules from %s\n", len(rules), path)
	return nil
}
