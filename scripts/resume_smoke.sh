#!/bin/sh
# Kill-and-resume smoke: crash a journaled fleet scan partway (fleetscan
# -crash-after exits 3 mid-drain, journal left un-closed — the portable
# SIGKILL stand-in), resume it from the same checkpoint, and require the
# resumed run's summary line to be byte-identical to an uninterrupted
# run's. Exercises journal recovery against a real process death, where
# the in-test crash drill (TestChaosCrashDrillResume) cannot.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fleetscan" ./examples/fleetscan

if "$workdir/fleetscan" -quiet -checkpoint "$workdir/resume.cvj" -crash-after 3 >/dev/null 2>&1; then
	echo "resume-smoke: -crash-after 3 exited 0, expected a simulated crash" >&2
	exit 1
fi
"$workdir/fleetscan" -quiet -checkpoint "$workdir/resume.cvj" >"$workdir/resumed.out"
"$workdir/fleetscan" -quiet -checkpoint "$workdir/clean.cvj" >"$workdir/clean.out"
if ! cmp -s "$workdir/resumed.out" "$workdir/clean.out"; then
	echo "resume-smoke: resumed summary differs from clean run:" >&2
	echo "  resumed: $(cat "$workdir/resumed.out")" >&2
	echo "  clean:   $(cat "$workdir/clean.out")" >&2
	exit 1
fi
echo "resume-smoke: ok ($(cat "$workdir/resumed.out"))"
