#!/bin/sh
# Full verification gate: build, lint, vet, and race-enabled tests.
# Equivalent to `make ci`; kept as a script for environments without make.
set -eu
cd "$(dirname "$0")/.."

go build ./...

# Static analysis over the embedded CVL rule library (exit 1 on any
# error-level diagnostic; warnings are reported but do not gate).
go run ./cmd/cvlint -q -builtin

# Semantic analysis gate: the library and the examples/rules project
# must be free of CVL4xx findings, warnings included, with no baseline.
analyze_out=$(go run ./cmd/cvlint -builtin; go run ./cmd/cvlint ./examples/rules)
if echo "$analyze_out" | grep -E 'CVL4[0-9][0-9]'; then
	echo "semantic findings above"
	exit 1
fi

fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
	echo "gofmt needed on:"
	echo "$fmt_out"
	exit 1
fi

go vet ./...
go test -race ./...

# Kill-and-resume smoke: crash a journaled fleet scan partway, resume,
# and require the summary to match an uninterrupted run's.
./scripts/resume_smoke.sh

# Worker-kill smoke: SIGKILL a cvworker process mid-shard during a
# distributed coordinate run and require the merged summary to match an
# in-process run's.
./scripts/worker_kill_smoke.sh

# Disk-pressure smoke: fill the disk (size-capped tmpfs, or the CV_FAULTS
# ENOSPC injector when unprivileged) under a journaled scan; the scan must
# complete degraded and a follow-up run must resume journaling.
./scripts/enospc_smoke.sh

# Fuzz smoke over the untrusted-input parsers; go test accepts one -fuzz
# target per invocation, so each runs separately.
fuzztime="${FUZZTIME:-10s}"
go test -fuzz FuzzDecode -fuzztime "$fuzztime" -run FuzzDecode ./internal/yaml/
go test -fuzz FuzzSSHDParse -fuzztime "$fuzztime" -run FuzzSSHDParse ./internal/lens/
