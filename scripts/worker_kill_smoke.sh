#!/bin/sh
# Worker-kill smoke: the multi-process half of the distributed chaos
# drills. Start two cvworker processes, coordinate a fleet validation
# across them with cvserver -coordinate, SIGKILL one worker mid-shard
# (real process death — torn journal tail and all), and require the
# merged summary line to be byte-identical to the same fleet scanned
# in-process. Exercises lease revocation, shard reassignment, and
# exactly-once merging against an actual killed process, where the
# in-test drills (TestChaosDistributed*) use httptest stand-ins.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
w1_pid=""
w2_pid=""
cleanup() {
	[ -n "$w1_pid" ] && kill -9 "$w1_pid" 2>/dev/null || true
	[ -n "$w2_pid" ] && kill -9 "$w2_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/cvserver" ./cmd/cvserver
go build -o "$workdir/cvworker" ./cmd/cvworker

# Ports unlikely to collide in CI; override via env if they do.
W1_PORT="${W1_PORT:-19311}"
W2_PORT="${W2_PORT:-19312}"

# In-process baseline over the same generated fleet.
"$workdir/cvserver" -coordinate -fleet 16 >"$workdir/clean.out" 2>/dev/null

# Two workers; w1 is slowed so its shards are mid-flight when it dies.
"$workdir/cvworker" -addr "127.0.0.1:$W1_PORT" -journal-dir "$workdir/seg1" \
	-scan-delay 400ms -shard-workers 1 2>"$workdir/w1.log" &
w1_pid=$!
"$workdir/cvworker" -addr "127.0.0.1:$W2_PORT" -journal-dir "$workdir/seg2" \
	-shard-workers 1 2>"$workdir/w2.log" &
w2_pid=$!

# Wait for both workers to accept leases.
ready() {
	curl -fsS -o /dev/null "http://127.0.0.1:$1/readyz" 2>/dev/null ||
		wget -q -O /dev/null "http://127.0.0.1:$1/readyz" 2>/dev/null
}
i=0
until ready "$W1_PORT" && ready "$W2_PORT"; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "worker-kill-smoke: workers never became ready" >&2
		exit 1
	fi
	sleep 0.1
done

# SIGKILL w1 mid-run: by 1.2s it is inside its first shard (400ms/entity)
# but has not finished it, so at least one lease must be revoked and
# reassigned to w2.
(
	sleep 1.2
	kill -9 "$w1_pid" 2>/dev/null || true
) &
killer_pid=$!

"$workdir/cvserver" -coordinate -fleet 16 \
	-workers "http://127.0.0.1:$W1_PORT,http://127.0.0.1:$W2_PORT" \
	-shard-size 4 -lease-ttl 2s \
	>"$workdir/dist.out" 2>"$workdir/coord.log"
wait "$killer_pid" 2>/dev/null || true
w1_pid="" # already dead; don't re-kill in cleanup

if ! kill -0 "$w2_pid" 2>/dev/null; then
	echo "worker-kill-smoke: surviving worker died" >&2
	cat "$workdir/w2.log" >&2
	exit 1
fi

if ! cmp -s "$workdir/dist.out" "$workdir/clean.out"; then
	echo "worker-kill-smoke: distributed summary differs from clean run:" >&2
	echo "  distributed: $(cat "$workdir/dist.out")" >&2
	echo "  clean:       $(cat "$workdir/clean.out")" >&2
	echo "--- coordinator log ---" >&2
	cat "$workdir/coord.log" >&2
	exit 1
fi

if ! grep -q 'lease_reassignments=[1-9]' "$workdir/coord.log"; then
	echo "worker-kill-smoke: no lease was reassigned; the kill landed too late to test anything:" >&2
	cat "$workdir/coord.log" >&2
	exit 1
fi

echo "worker-kill-smoke: ok ($(cat "$workdir/dist.out"))"
