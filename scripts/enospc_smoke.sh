#!/bin/sh
# Disk-pressure smoke: fill the disk under a journaled fleet scan and
# require graceful degradation end to end — the scan completes, every
# entity is reported, the degradation shows up in the summary line, the
# journal stats, and the Prometheus rendering, and a follow-up run with
# the pressure cleared resumes journaling.
#
# Preferred mode is a real size-capped tmpfs (needs privileges to mount);
# without them the smoke falls back to the deterministic CV_FAULTS
# injector, which exercises the identical degraded-journal code path.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
tmpfs_dir=""
cleanup() {
	if [ -n "$tmpfs_dir" ]; then
		umount "$tmpfs_dir" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/fleetscan" ./examples/fleetscan

mode="faults"
ckpt="$workdir/fleet.cvj"
mount_dir="$workdir/full-disk"
mkdir -p "$mount_dir"
if mount -t tmpfs -o size=4k tmpfs "$mount_dir" 2>/dev/null; then
	mode="tmpfs"
	tmpfs_dir="$mount_dir"
	ckpt="$tmpfs_dir/fleet.cvj"
else
	# Unprivileged fallback: deterministic ENOSPC from the third journal
	# append onward, via the same spec an operator would use.
	CV_FAULTS="op=journal-append kind=enospc after=2"
	export CV_FAULTS
fi

# Run 1: the disk fills mid-scan. The scan itself must still exit 0.
if ! "$workdir/fleetscan" -checkpoint "$ckpt" >"$workdir/run1.out" 2>"$workdir/run1.err"; then
	echo "enospc-smoke($mode): scan failed under disk pressure (must complete degraded):" >&2
	cat "$workdir/run1.err" >&2
	exit 1
fi
if ! grep -q 'journal degraded' "$workdir/run1.err"; then
	echo "enospc-smoke($mode): no degraded-journal operator log on stderr" >&2
	cat "$workdir/run1.err" >&2
	exit 1
fi
if ! grep -q 'journal_degraded=[1-9]' "$workdir/run1.out"; then
	echo "enospc-smoke($mode): summary does not account the degradation" >&2
	grep 'scanned=' "$workdir/run1.out" >&2 || true
	exit 1
fi
# End-of-run journal state may be degraded OR already re-probed back to
# health (truncating a torn tail can itself free space on a full tmpfs);
# what must hold is that failed appends were counted.
if ! grep -Eq 'append_errors=[1-9]' "$workdir/run1.out"; then
	echo "enospc-smoke($mode): journal stats line counts no append errors" >&2
	exit 1
fi
if ! grep -Eq 'configvalidator_journal_append_errors_total [1-9]' "$workdir/run1.out"; then
	echo "enospc-smoke($mode): append errors missing from Prometheus rendering" >&2
	exit 1
fi

# Run 2: the pressure clears (faults disarmed / the journal leaves the
# full tmpfs). Journaling must resume: records append, nothing degraded.
unset CV_FAULTS || true
if [ "$mode" = "tmpfs" ]; then
	# The wounded journal moves to a disk with space; recovery handles
	# any tail ENOSPC tore mid-record.
	cp "$ckpt" "$workdir/fleet.cvj"
	ckpt="$workdir/fleet.cvj"
fi
if ! "$workdir/fleetscan" -checkpoint "$ckpt" >"$workdir/run2.out" 2>"$workdir/run2.err"; then
	echo "enospc-smoke($mode): follow-up run failed:" >&2
	cat "$workdir/run2.err" >&2
	exit 1
fi
if ! grep -q 'journal_degraded=0' "$workdir/run2.out"; then
	echo "enospc-smoke($mode): follow-up run still reports degraded results" >&2
	exit 1
fi
if ! grep -q 'degraded=false' "$workdir/run2.out"; then
	echo "enospc-smoke($mode): journal still degraded after pressure cleared" >&2
	exit 1
fi
if ! grep -Eq 'appends=[1-9]' "$workdir/run2.out"; then
	echo "enospc-smoke($mode): journaling did not resume on the follow-up run" >&2
	exit 1
fi
echo "enospc-smoke: ok (mode=$mode)"
