package configvalidator

// Differential determinism suite: the Rehearsal-style guarantee that
// identical inputs produce byte-identical reports regardless of how the
// work is scheduled. Every fixture entity is validated serial, at
// Parallelism 2 and 8, and through a cold and then warm parse cache, and
// all five runs must render the same text, JSON, and JUnit bytes. A
// seeded shuffle of the manifest entries then shows that report ordering
// is a function of the manifest, not of goroutine scheduling.

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/rules"
)

// determinismEntities builds a representative entity set: two generated
// hosts (system- and application-flavored) and a small image fleet, all
// with deliberate misconfigurations so reports carry real findings.
func determinismEntities(t testing.TB) []Entity {
	t.Helper()
	u, _ := fixtures.UbuntuHost("det-ubuntu", fixtures.Profile{Seed: 11, MisconfigRate: 0.3})
	s, _ := fixtures.SystemHost("det-system", fixtures.Profile{Seed: 23, MisconfigRate: 0.5})
	ents := []Entity{u, s}
	reg, _ := fixtures.Fleet(4, fixtures.Profile{Seed: 99, MisconfigRate: 0.3})
	for _, ref := range reg.Images() {
		img, err := reg.Pull(ref)
		if err != nil {
			t.Fatal(err)
		}
		ents = append(ents, img.Entity())
	}
	return ents
}

// renderAll renders a report in every supported output format.
func renderAll(t testing.TB, rep *Report) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, 3)
	for name, write := range map[string]func(io.Writer, *Report, OutputOptions) error{
		"text":  WriteText,
		"json":  WriteJSON,
		"junit": WriteJUnit,
	} {
		var buf bytes.Buffer
		if err := write(&buf, rep, OutputOptions{}); err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

func TestDeterminismAcrossSchedules(t *testing.T) {
	cachedV, err := New(WithParseCache(NewParseCache(0)))
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opts []Option
	}{
		{"parallel2", []Option{WithParallelism(2)}},
		{"parallel8", []Option{WithParallelism(8)}},
	}

	for _, ent := range determinismEntities(t) {
		serialV, err := New(WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := serialV.Validate(ent)
		if err != nil {
			t.Fatal(err)
		}
		want := renderAll(t, rep)

		check := func(label string, v *Validator) {
			t.Helper()
			rep, err := v.Validate(ent)
			if err != nil {
				t.Fatalf("%s/%s: %v", ent.Name(), label, err)
			}
			for format, wantBytes := range want {
				if got := renderAll(t, rep)[format]; !bytes.Equal(got, wantBytes) {
					t.Errorf("%s: %s %s report differs from serial baseline", ent.Name(), label, format)
				}
			}
		}
		for _, variant := range variants {
			v, err := New(variant.opts...)
			if err != nil {
				t.Fatal(err)
			}
			check(variant.name, v)
		}
		// First pass through cachedV populates the cache for this entity
		// (cold), the second is served from it (warm); both must match.
		check("cache-cold", cachedV)
		check("cache-warm", cachedV)
	}

	stats := cachedV.ParseCacheStats()
	if stats.Hits == 0 {
		t.Error("warm cache passes recorded no hits — the cached variant tested nothing")
	}
}

// TestDeterminismManifestOrder validates one entity against a seeded
// shuffle of the built-in manifest: the serial and parallel reports must
// agree byte for byte, and the report's entity sequence must follow the
// shuffled manifest order — ordering derives from the manifest, never
// from which worker finished first.
func TestDeterminismManifestOrder(t *testing.T) {
	base, err := rules.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	host, _ := fixtures.UbuntuHost("det-shuffle", fixtures.Profile{Seed: 31, MisconfigRate: 0.4})

	rng := rand.New(rand.NewSource(1509)) // arXiv 1509.05100, for luck
	for iter := 0; iter < 3; iter++ {
		shuffled := &cvl.Manifest{Entries: append([]*cvl.ManifestEntry(nil), base.Entries...)}
		rng.Shuffle(len(shuffled.Entries), func(i, j int) {
			shuffled.Entries[i], shuffled.Entries[j] = shuffled.Entries[j], shuffled.Entries[i]
		})

		serialV, err := New(WithManifest(shuffled, rules.Reader()), WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		parallelV, err := New(WithManifest(shuffled, rules.Reader()), WithParallelism(8))
		if err != nil {
			t.Fatal(err)
		}
		serialRep, err := serialV.Validate(host)
		if err != nil {
			t.Fatal(err)
		}
		parallelRep, err := parallelV.Validate(host)
		if err != nil {
			t.Fatal(err)
		}
		wantAll := renderAll(t, serialRep)
		gotAll := renderAll(t, parallelRep)
		for format, want := range wantAll {
			if !bytes.Equal(gotAll[format], want) {
				t.Errorf("iter %d: parallel %s report differs from serial on shuffled manifest", iter, format)
			}
		}

		// The sequence of manifest entities in the report must be the
		// shuffled entry order with consecutive repeats collapsed.
		var gotOrder []string
		for _, res := range parallelRep.Results {
			if len(gotOrder) == 0 || gotOrder[len(gotOrder)-1] != res.ManifestEntity {
				gotOrder = append(gotOrder, res.ManifestEntity)
			}
		}
		wantOrder := make(map[string]int)
		for i, e := range shuffled.EnabledEntries() {
			wantOrder[e.Name] = i
		}
		last := -1
		for _, name := range gotOrder {
			idx, ok := wantOrder[name]
			if !ok {
				t.Fatalf("iter %d: report names unknown manifest entity %q", iter, name)
			}
			if idx <= last {
				t.Errorf("iter %d: entity %q out of shuffled-manifest order", iter, name)
			}
			last = idx
		}
	}
}
