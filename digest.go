package configvalidator

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"

	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

// ConfigDigest computes the SHA-256 identity of everything that could
// change a validation verdict for this entity: the rule files of the
// selected manifest entries (so a rule-library edit invalidates journaled
// results), the metadata and content of every file under the entries'
// config search paths, the installed-package database, and the names of
// the entity's runtime features. Two entities with equal digests validate
// to byte-identical reports, which is what lets a resumed or re-run fleet
// scan replay a journaled result instead of re-scanning (see
// FleetOptions.Journal).
//
// Known digest blind spots, accepted for cheapness: runtime feature
// *outputs* are not executed (only the feature list participates), and
// rule-file inheritance chains deeper than one parent hash only the first
// two files. Both change rarely relative to config files; when they do, a
// Compact()ed journal or a new journal path forces a full re-scan.
//
// target selects one manifest entity as in ValidateTarget; empty digests
// the full manifest. Panics from entity implementations are recovered into
// errors. Any error means "no digest": the caller must scan.
func (v *Validator) ConfigDigest(e Entity, target string) (dig string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("configvalidator: digest %s: panic: %v", e.Name(), r)
		}
	}()

	var entries []*cvl.ManifestEntry
	if target == "" {
		entries = v.manifest.EnabledEntries()
	} else {
		entry, ok := v.manifest.Entry(target)
		if !ok {
			return "", fmt.Errorf("configvalidator: %w: %q", ErrUnknownTarget, target)
		}
		entries = []*cvl.ManifestEntry{entry}
	}

	h := sha256.New()
	io.WriteString(h, "cvdigest/1\x00")

	// Rule-library fingerprint: the verdict depends on the rules as much as
	// on the config, so a rule edit must change the digest.
	for _, entry := range entries {
		io.WriteString(h, "entry\x00"+entry.Name+"\x00")
		for _, file := range []string{entry.CVLFile, entry.ParentCVLFile} {
			if file == "" {
				continue
			}
			fp, ferr := v.ruleFileFingerprint(file)
			if ferr != nil {
				return "", fmt.Errorf("configvalidator: digest %s: rule file %s: %w", e.Name(), file, ferr)
			}
			io.WriteString(h, file+"\x00"+fp+"\x00")
		}
	}

	// Config files: metadata and content of everything under the union of
	// the entries' search paths. Roots absent from the entity contribute
	// nothing (their absence is itself part of the digest via omission of
	// their files); any other walk or read failure aborts the digest — a
	// half-observed entity must not replay.
	for _, root := range searchPathUnion(entries) {
		io.WriteString(h, "root\x00"+root+"\x00")
		werr := e.Walk(root, func(fi entity.FileInfo) error {
			fmt.Fprintf(h, "f\x00%s\x00%d\x00%o\x00%d\x00%d\x00%d\x00",
				fi.Path, fi.Size, uint32(fi.Mode), fi.UID, fi.GID, fi.ModTime.UnixNano())
			if fi.IsDir() {
				return nil
			}
			data, rerr := e.ReadFile(fi.Path)
			if rerr != nil {
				return fmt.Errorf("read %s: %w", fi.Path, rerr)
			}
			sum := sha256.Sum256(data)
			h.Write(sum[:])
			return nil
		})
		if werr != nil {
			if errors.Is(werr, entity.ErrNotExist) {
				continue
			}
			return "", fmt.Errorf("configvalidator: digest %s: %w", e.Name(), werr)
		}
	}

	// System state: the installed-package database (sorted by DB.All) and
	// the sorted runtime-feature names.
	if db, perr := e.Packages(); perr == nil && db != nil {
		for _, p := range db.All() {
			io.WriteString(h, "pkg\x00"+p.Name+"\x00"+p.Version+"\x00"+p.Architecture+"\x00"+p.Status+"\x00")
		}
	} else {
		io.WriteString(h, "pkg-unavailable\x00")
	}
	for _, f := range e.Features() {
		io.WriteString(h, "feat\x00"+f+"\x00")
	}

	return hex.EncodeToString(h.Sum(nil)), nil
}

// ruleFileFingerprint hashes one rule file's content, memoized — the rule
// library is immutable for a Validator's lifetime and shared across every
// entity in a fleet.
func (v *Validator) ruleFileFingerprint(path string) (string, error) {
	v.digestMu.Lock()
	defer v.digestMu.Unlock()
	if fp, ok := v.ruleFP[path]; ok {
		return fp, nil
	}
	data, err := v.reader(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	fp := hex.EncodeToString(sum[:])
	if v.ruleFP == nil {
		v.ruleFP = make(map[string]string)
	}
	v.ruleFP[path] = fp
	return fp, nil
}

// searchPathUnion returns the sorted, deduplicated config search paths of
// the entries.
func searchPathUnion(entries []*cvl.ManifestEntry) []string {
	seen := make(map[string]bool)
	var roots []string
	for _, entry := range entries {
		for _, p := range entry.ConfigSearchPaths {
			if !seen[p] {
				seen[p] = true
				roots = append(roots, p)
			}
		}
	}
	sort.Strings(roots)
	return roots
}
