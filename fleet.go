package configvalidator

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// FleetResult is the outcome of validating one entity of a fleet.
type FleetResult struct {
	// Report is the validation report; nil when Err is set.
	Report *Report
	// Err records a scan failure for this entity.
	Err error
}

// FleetOptions tune ValidateFleet.
type FleetOptions struct {
	// Workers is the number of concurrent scanners; 0 means GOMAXPROCS.
	Workers int
	// Target restricts validation to one manifest entity (e.g. "docker");
	// empty runs the full manifest.
	Target string
}

// ValidateFleet validates a stream of entities concurrently — the
// production workload of the paper's §5, where tens of thousands of images
// and containers are scanned daily. Entities are read from the entities
// channel until it closes or ctx is cancelled; one FleetResult per entity
// is sent on the returned channel, which is closed after all workers
// finish. Result order is not guaranteed.
func (v *Validator) ValidateFleet(ctx context.Context, entities <-chan Entity, opts FleetOptions) <-chan FleetResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make(chan FleetResult)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case ent, ok := <-entities:
					if !ok {
						return
					}
					res := v.scanOne(ent, opts.Target)
					select {
					case results <- res:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	return results
}

func (v *Validator) scanOne(ent Entity, target string) FleetResult {
	var (
		rep *Report
		err error
	)
	if target != "" {
		rep, err = v.ValidateTarget(ent, target)
	} else {
		rep, err = v.Validate(ent)
	}
	if err != nil {
		return FleetResult{Err: fmt.Errorf("scan %s: %w", ent.Name(), err)}
	}
	return FleetResult{Report: rep}
}

// FleetSummary aggregates fleet results.
type FleetSummary struct {
	// Scanned is the number of entities validated successfully.
	Scanned int
	// Errors is the number of entities whose scan failed.
	Errors int
	// ByStatus tallies individual rule results across the fleet.
	ByStatus map[Status]int
	// EntitiesWithFindings counts entities with at least one failing check.
	EntitiesWithFindings int
}

// Summarize drains a fleet-result channel into a summary.
func Summarize(results <-chan FleetResult) FleetSummary {
	out := FleetSummary{ByStatus: make(map[Status]int, 4)}
	for res := range results {
		if res.Err != nil {
			out.Errors++
			continue
		}
		out.Scanned++
		counts := res.Report.Counts()
		for status, n := range counts {
			out.ByStatus[status] += n
		}
		if counts[StatusFail] > 0 {
			out.EntitiesWithFindings++
		}
	}
	return out
}
