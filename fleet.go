package configvalidator

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"configvalidator/internal/engine"
	"configvalidator/internal/journal"
)

// ErrScanTimeout marks a scan abandoned at its per-entity deadline
// (FleetOptions.ScanTimeout). It wraps context.DeadlineExceeded, so it
// classifies as Transient and is retried under FleetOptions.Retries.
var ErrScanTimeout = fmt.Errorf("scan deadline exceeded: %w", context.DeadlineExceeded)

// ErrLeaseRevoked is the cancellation cause a distributed coordinator
// attaches (context.WithCancelCause) when it revokes a shard lease —
// after missed heartbeats, a worker death, or graceful drain — so scans
// cut short by orchestration classify as ErrorKindRevoked in
// FleetSummary.ErrorsByKind, distinguishable from a user pressing ^C.
var ErrLeaseRevoked = errors.New("shard lease revoked")

// FleetResult is the outcome of validating one entity of a fleet.
type FleetResult struct {
	// Entity is the scanned entity's name.
	Entity string
	// Report is the validation report; nil when Err is set.
	Report *Report
	// Err records a scan failure for this entity: the final validation
	// error after retries, ErrScanTimeout for a scan abandoned at its
	// deadline, or a *PanicError for a scan that panicked.
	Err error
	// Resumed reports that the result was replayed from the journal
	// (FleetOptions.Journal) instead of re-scanned: the entity's config
	// digest matched a journaled completed record.
	Resumed bool
	// Worker names the remote worker that produced the result when the
	// fleet ran under a distributed scheduler; empty for local scans.
	// Purely informational: Summarize ignores it, so a distributed run's
	// summary digest stays byte-identical to a single-process run's.
	Worker string
	// JournalDegraded reports that this result could not be persisted to
	// the run's journal (disk full, I/O fault): the result itself is
	// complete and correct, but a crash before the journal recovers would
	// re-scan this entity. Summarize tallies these so a degraded run is
	// visible in the summary, not silently less durable.
	JournalDegraded bool
}

// Scheduler is the execution-substrate seam for fleet validation: it
// consumes entities and emits exactly one FleetResult per entity. The
// default (a nil FleetOptions.Scheduler) is the in-process worker pool;
// the distributed coordinator in internal/dist implements the same
// contract over remote cvworker processes with shard leases and
// journal-backed reassignment. Implementations must close the returned
// channel once all results are delivered or the context is cancelled.
type Scheduler interface {
	Schedule(ctx context.Context, v *Validator, entities <-chan Entity, opts FleetOptions) <-chan FleetResult
}

// FleetOptions tune ValidateFleet.
type FleetOptions struct {
	// Workers is the number of concurrent scanners; 0 means GOMAXPROCS.
	Workers int
	// Target restricts validation to one manifest entity (e.g. "docker");
	// empty runs the full manifest.
	Target string
	// ScanTimeout bounds each per-entity scan attempt; 0 means no
	// deadline. An attempt that exceeds it is abandoned and reported as
	// ErrScanTimeout (the abandoned goroutine is left to finish on its
	// own — entities cannot be preempted mid-crawl — so a truly hung
	// entity costs one parked goroutine, not a stuck worker).
	ScanTimeout time.Duration
	// Retries is the number of extra attempts allowed per entity when the
	// scan fails with a Transient error (timeouts, marked-transient
	// crawler failures). Permanent errors are never retried.
	Retries int
	// RetryBackoff is the base delay before the first retry; 0 means 50ms.
	// Subsequent waits use decorrelated jitter — each sleep is drawn
	// uniformly from [base, 3×previous], capped at 5s — so a fleet of
	// entities failing together against one flaky backend does not retry
	// in lockstep. Backoff waits honor context cancellation.
	RetryBackoff time.Duration
	// Journal, when set, makes the run crash-safe and resumable: every
	// FleetResult is appended to it as it completes, and an entity whose
	// (name, config digest) matches a journaled completed record is
	// skipped — its report replayed instead of re-scanned (FleetResult
	// with Resumed set). A run killed partway is resumed by re-running it
	// over the same journal; the union of results equals one uninterrupted
	// run. Open or recover one with OpenJournal.
	Journal *Journal
	// Scheduler selects the execution substrate; nil runs the in-process
	// worker pool. A distributed run sets it to a dist.Coordinator, which
	// shards the entity stream across remote cvworkers.
	Scheduler Scheduler
	// Logf receives rare operator-facing messages — today only the
	// one-shot "journal degraded" notice when results stop persisting.
	// Nil writes to standard error.
	Logf func(format string, args ...any)

	// journalLogOnce deduplicates the degraded-journal operator notice
	// for one run; the local scheduler installs it before fan-out.
	journalLogOnce *sync.Once
}

// logf routes an operator message to Logf or standard error.
func (o FleetOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

const (
	defaultRetryBackoff = 50 * time.Millisecond
	maxRetryBackoff     = 5 * time.Second
)

// jitterInt63n is the randomness source for retry jitter — a seam so tests
// can pin it and assert backoff bounds deterministically.
var jitterInt63n = rand.Int63n

// NextBackoff draws the next decorrelated-jitter sleep: uniform in
// [base, 3×prev], capped at 5s. With base == prev == cap the draw
// degenerates to the cap, so backoff never exceeds 5s. ValidateFleet uses
// it between scan retries; the distributed coordinator reuses it for
// worker RPC retries and unhealthy-worker probing, so a fleet of
// coordinators hammering one recovering worker does not retry in
// lockstep.
func NextBackoff(base, prev time.Duration) time.Duration {
	return nextBackoff(base, prev)
}

// nextBackoff draws the next decorrelated-jitter sleep: uniform in
// [base, 3×prev], capped at maxRetryBackoff. With base == prev == cap the
// draw degenerates to the cap, so backoff never exceeds 5s.
func nextBackoff(base, prev time.Duration) time.Duration {
	upper := 3 * prev
	if upper > maxRetryBackoff {
		upper = maxRetryBackoff
	}
	if upper <= base {
		return base
	}
	return base + time.Duration(jitterInt63n(int64(upper-base)+1))
}

// ValidateFleet validates a stream of entities concurrently — the
// production workload of the paper's §5, where tens of thousands of images
// and containers are scanned daily. Entities are read from the entities
// channel until it closes or ctx is cancelled; one FleetResult per entity
// is sent on the returned channel, which is closed after all workers
// finish. Result order is not guaranteed.
//
// Workers are isolated: a panicking entity surfaces as a FleetResult.Err
// carrying the stack (*PanicError) rather than crashing the run, scans are
// bounded by opts.ScanTimeout, and transient failures are retried per
// opts.Retries. With a telemetry collector attached (WithTelemetry), every
// outcome — including panics, timeouts, and retries — is recorded.
//
// A parse cache attached with WithParseCache is shared by all workers:
// identical config files across the fleet parse once, which is where most
// of the scan time goes when images share base layers. WithParallelism
// additionally fans rule evaluation out within each entity; the two
// compose (workers × intra-entity pool), so on a fully loaded machine
// prefer raising Workers first and leave Parallelism at 1.
func (v *Validator) ValidateFleet(ctx context.Context, entities <-chan Entity, opts FleetOptions) <-chan FleetResult {
	if opts.Scheduler != nil {
		return opts.Scheduler.Schedule(ctx, v, entities, opts)
	}
	return localScheduler{}.Schedule(ctx, v, entities, opts)
}

// localScheduler is the default execution substrate: a bounded in-process
// worker pool pulling from the entity stream, with the journal resume and
// append protocol applied per entity.
type localScheduler struct{}

func (localScheduler) Schedule(ctx context.Context, v *Validator, entities <-chan Entity, opts FleetOptions) <-chan FleetResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts.journalLogOnce = new(sync.Once)
	results := make(chan FleetResult)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case ent, ok := <-entities:
					if !ok {
						return
					}
					res := v.scanJournaled(ctx, ent, opts)
					select {
					case results <- res:
					case <-ctx.Done():
						// The result was computed (and journaled, when a
						// journal is attached) but the run was cancelled
						// before it could be delivered.
						v.telemetry.ScanAbandoned()
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	return results
}

// scanJournaled wraps scanOne with the journal's resume/append protocol:
// an entity whose (name, config digest) matches a journaled completed
// record replays it instead of re-scanning; every other outcome is
// appended to the journal as it completes.
func (v *Validator) scanJournaled(ctx context.Context, ent Entity, opts FleetOptions) FleetResult {
	if opts.Journal == nil {
		res := v.scanOne(ctx, ent, opts)
		res.Entity = ent.Name()
		return res
	}
	digest, derr := v.safeConfigDigest(ctx, ent, opts)
	if derr == nil {
		if rec, ok := opts.Journal.Lookup(ent.Name(), digest); ok {
			v.telemetry.JournalEntitySkipped()
			return FleetResult{Entity: ent.Name(), Report: rec.Report.Report(), Resumed: true}
		}
	}
	res := v.scanOne(ctx, ent, opts)
	res.Entity = ent.Name()
	rec := journal.Record{Entity: ent.Name()}
	if res.Err != nil {
		// Failed scans are journaled digest-less: audit-only records that a
		// resumed run re-scans.
		rec.Err = res.Err.Error()
	} else {
		rec.Report = journal.NewReportRecord(res.Report)
		// An entity whose digest could not be computed still journals its
		// report (for merging and drift), but without a digest it can never
		// satisfy a resume Lookup.
		if derr == nil {
			rec.Digest = digest
		}
	}
	// An append failure (disk full) must not fail the scan: the result is
	// still delivered in-memory. But it must not be silent either — count
	// it, mark the result, and tell the operator once per run.
	if err := opts.Journal.Append(rec); err != nil {
		v.telemetry.JournalAppendError()
		res.JournalDegraded = true
		if opts.journalLogOnce != nil {
			opts.journalLogOnce.Do(func() {
				opts.logf("fleet: journal degraded, results no longer persisted (scan continues): %v", err)
			})
		}
	}
	return res
}

// safeConfigDigest bounds ConfigDigest by the scan deadline — a hung
// entity must not stall the resume check any more than it may stall a
// scan. As in scanAttempt, an abandoned digest goroutine is left to finish
// on its own.
func (v *Validator) safeConfigDigest(ctx context.Context, ent Entity, opts FleetOptions) (string, error) {
	if opts.ScanTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.ScanTimeout)
		defer cancel()
	}
	if ctx.Done() == nil {
		return v.ConfigDigest(ent, opts.Target)
	}
	type outcome struct {
		digest string
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		d, err := v.ConfigDigest(ent, opts.Target)
		done <- outcome{digest: d, err: err}
	}()
	select {
	case out := <-done:
		return out.digest, out.err
	case <-ctx.Done():
		return "", fmt.Errorf("digest %s: %w", ent.Name(), context.Cause(ctx))
	}
}

// scanOne validates one entity under the fleet's robustness policy:
// per-attempt deadline, panic isolation, and bounded retry with
// decorrelated-jitter backoff for transient failures.
func (v *Validator) scanOne(ctx context.Context, ent Entity, opts FleetOptions) FleetResult {
	base := opts.RetryBackoff
	if base <= 0 {
		base = defaultRetryBackoff
	}
	backoff := base
	var lastErr error
	for attempt := 0; ; attempt++ {
		rep, err := v.scanAttempt(ctx, ent, opts.Target, opts.ScanTimeout)
		if err == nil {
			return FleetResult{Report: rep}
		}
		lastErr = err
		if attempt >= opts.Retries || !Transient(err) || ctx.Err() != nil {
			break
		}
		v.telemetry.RetryScheduled()
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return FleetResult{Err: fmt.Errorf("scan %s: %w", ent.Name(), context.Cause(ctx))}
		case <-timer.C:
		}
		backoff = nextBackoff(base, backoff)
	}
	return FleetResult{Err: fmt.Errorf("scan %s: %w", ent.Name(), lastErr)}
}

// scanAttempt runs a single validation attempt with panic recovery and an
// optional deadline. Without a deadline (and with an uncancellable
// context) it runs inline; otherwise the validation runs in a goroutine
// that is abandoned if the deadline fires first.
func (v *Validator) scanAttempt(ctx context.Context, ent Entity, target string, timeout time.Duration) (*Report, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if ctx.Done() == nil {
		return v.safeValidate(ent, target)
	}
	start := time.Now()
	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := v.safeValidate(ent, target)
		done <- outcome{rep: rep, err: err}
	}()
	select {
	case out := <-done:
		return out.rep, out.err
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			v.telemetry.ScanTimedOut(time.Since(start))
			return nil, fmt.Errorf("%w (after %v)", ErrScanTimeout, timeout)
		}
		// Cancelled, not expired: surface the cancellation *cause* so a
		// coordinator-revoked lease (ErrLeaseRevoked) classifies as revoked
		// rather than blending into user cancellation.
		return nil, context.Cause(ctx)
	}
}

// safeValidate is one validation attempt with panic isolation: a panic in
// a crawler, lens, or rule evaluation becomes a *PanicError carrying the
// stack instead of killing the fleet run.
func (v *Validator) safeValidate(ent Entity, target string) (rep *Report, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			v.telemetry.ScanPanicked(time.Since(start))
			rep = nil
			err = &engine.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if target != "" {
		return v.ValidateTarget(ent, target)
	}
	return v.Validate(ent)
}

// Scan-error kinds, the keys of FleetSummary.ErrorsByKind.
const (
	// ErrorKindTimeout marks scans abandoned at their deadline.
	ErrorKindTimeout = "timeout"
	// ErrorKindPanic marks scans that panicked and were isolated.
	ErrorKindPanic = "panic"
	// ErrorKindCancelled marks scans cut short by context cancellation.
	ErrorKindCancelled = "cancelled"
	// ErrorKindRevoked marks scans cut short because a distributed
	// coordinator revoked the shard lease (missed heartbeats, worker
	// death, drain) — orchestration, not user cancellation, and the
	// coordinator normally reassigns and re-scans these.
	ErrorKindRevoked = "revoked"
	// ErrorKindPermanent marks every other failure — the errors retrying
	// will not fix.
	ErrorKindPermanent = "permanent"
)

// ErrorKinder lets an error carry its own ErrorsByKind classification —
// the hook that keeps classification correct across process boundaries:
// a worker classifies a scan error locally (where the error chain with
// its sentinels still exists) and the coordinator reconstructs it as a
// value whose ErrorKind survives the wire.
type ErrorKinder interface {
	error
	ErrorKind() string
}

// ClassifyScanError maps a FleetResult.Err to its ErrorsByKind key. Panics
// classify first (a panic during a deadline race is still a panic), then
// errors that carry their own kind (remote results), then lease
// revocation, deadline expiry, and cancellation; everything else is
// permanent. Cancellation causes attached with context.WithCancelCause
// flow through scan errors via context.Cause, which is how a revoked
// lease stays distinguishable from a user pressing ^C.
func ClassifyScanError(err error) string {
	var pe *PanicError
	var ek ErrorKinder
	switch {
	case errors.As(err, &pe):
		return ErrorKindPanic
	case errors.As(err, &ek):
		return ek.ErrorKind()
	case errors.Is(err, ErrLeaseRevoked):
		return ErrorKindRevoked
	case errors.Is(err, ErrScanTimeout) || errors.Is(err, context.DeadlineExceeded):
		return ErrorKindTimeout
	case errors.Is(err, context.Canceled):
		return ErrorKindCancelled
	default:
		return ErrorKindPermanent
	}
}

// FleetSummary aggregates fleet results.
type FleetSummary struct {
	// Scanned is the number of entities validated successfully.
	Scanned int
	// Resumed is the subset of Scanned whose report was replayed from the
	// journal instead of re-scanned.
	Resumed int
	// Errors is the number of entities whose scan failed.
	Errors int
	// ErrorsByKind breaks Errors down by failure class: timeout, panic,
	// cancelled, or permanent (see ClassifyScanError).
	ErrorsByKind map[string]int
	// ByStatus tallies individual rule results across the fleet.
	ByStatus map[Status]int
	// EntitiesWithFindings counts entities with at least one failing check.
	EntitiesWithFindings int
	// EntitiesWithErrors counts entities with at least one error-grade
	// rule result (crawler or lens blowups that did not abort the scan).
	// Such an entity is not a clean scan even when nothing failed.
	EntitiesWithErrors int
	// EntitiesDegraded counts entities with at least one degraded result:
	// the scan completed but some checks ran on incomplete input data
	// (unreadable files, panicking lenses or rules).
	EntitiesDegraded int
	// JournalDegraded counts results that could not be persisted to the
	// run's journal (disk full, I/O fault). The findings are unaffected;
	// only crash-resume coverage for those entities is lost.
	JournalDegraded int
}

// Summarize drains a fleet-result channel into a summary.
func Summarize(results <-chan FleetResult) FleetSummary {
	out := FleetSummary{
		ByStatus:     make(map[Status]int, 4),
		ErrorsByKind: make(map[string]int, 4),
	}
	for res := range results {
		if res.JournalDegraded {
			out.JournalDegraded++
		}
		if res.Err != nil {
			out.Errors++
			out.ErrorsByKind[ClassifyScanError(res.Err)]++
			continue
		}
		out.Scanned++
		if res.Resumed {
			out.Resumed++
		}
		counts := res.Report.Counts()
		for status, n := range counts {
			out.ByStatus[status] += n
		}
		if counts[StatusFail] > 0 {
			out.EntitiesWithFindings++
		}
		if counts[StatusError] > 0 {
			out.EntitiesWithErrors++
		}
		if counts[StatusDegraded] > 0 {
			out.EntitiesDegraded++
		}
	}
	return out
}

// String renders the summary as a one-line operator digest. Resumed is
// deliberately omitted: a resumed run's digest must equal an uninterrupted
// run's, which is what the kill-and-resume CI smoke compares.
func (s FleetSummary) String() string {
	return fmt.Sprintf(
		"scanned=%d errors=%d err_timeout=%d err_panic=%d err_cancelled=%d err_revoked=%d err_permanent=%d entities_with_findings=%d entities_with_errors=%d entities_degraded=%d pass=%d fail=%d n/a=%d rule_errors=%d degraded=%d journal_degraded=%d",
		s.Scanned, s.Errors,
		s.ErrorsByKind[ErrorKindTimeout], s.ErrorsByKind[ErrorKindPanic],
		s.ErrorsByKind[ErrorKindCancelled], s.ErrorsByKind[ErrorKindRevoked], s.ErrorsByKind[ErrorKindPermanent],
		s.EntitiesWithFindings, s.EntitiesWithErrors, s.EntitiesDegraded,
		s.ByStatus[StatusPass], s.ByStatus[StatusFail],
		s.ByStatus[StatusNotApplicable], s.ByStatus[StatusError], s.ByStatus[StatusDegraded],
		s.JournalDegraded)
}
